//! Transactional variables.
//!
//! A [`TVar<T>`] is a typed handle to a shared memory word managed by the
//! STM. All access from operator code goes through a
//! [`Txn`](crate::txn::Txn); direct reads of the committed value are provided
//! for initialization, checkpointing and tests.
//!
//! # Relation to the paper's "lock array"
//!
//! The paper's STM keeps conflict metadata in a shared region called the
//! *lock array*, indexed by hashing memory addresses (§3). Because our
//! variables are first-class objects rather than raw addresses, the same
//! metadata — who is currently writing, who has read which version, which
//! published-but-uncommitted values exist — lives directly on each variable
//! ([`VarMeta`]), giving the exact (collision-free) granularity the lock
//! array approximates.

use std::any::Any;
use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::types::{Serial, TxnId, VarId};

/// Type-erased shared value slot.
pub(crate) type DynValue = Arc<dyn Any + Send + Sync>;

// ---------------------------------------------------------------------------
// Striped value locks (the paper's "lock array")
// ---------------------------------------------------------------------------

/// Number of stripes in the value-lock array. Power of two so the stripe
/// index is a mask of the variable id.
const STRIPE_COUNT: usize = 64;

/// One stripe: a spinlock guarding the committed-value slots of every
/// variable hashing to it. Critical sections are a single `Arc`
/// clone/assignment, so spinning (never parking) is the right trade.
struct Stripe {
    locked: AtomicBool,
}

impl Stripe {
    fn try_lock(&self) -> bool {
        !self.locked.swap(true, Ordering::Acquire)
    }

    fn lock(&self) {
        while self.locked.swap(true, Ordering::Acquire) {
            std::hint::spin_loop();
        }
    }

    fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

#[allow(clippy::declare_interior_mutable_const)] // const used only as array initializer
const STRIPE_INIT: Stripe = Stripe { locked: AtomicBool::new(false) };
static STRIPES: [Stripe; STRIPE_COUNT] = [STRIPE_INIT; STRIPE_COUNT];

fn stripe_of(id: VarId) -> &'static Stripe {
    &STRIPES[(id.raw() as usize) & (STRIPE_COUNT - 1)]
}

/// How a transaction observed a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadKind {
    /// Read the committed value (at the recorded version).
    Committed(u64),
    /// Read the committed value (at the recorded version) through the
    /// striped-lock fast path *without* registering a reader record. The
    /// transaction validates the version and registers itself under the
    /// variable lock at its own publish; until then the read is invisible
    /// to other transactions.
    Fast(u64),
    /// Read the published-but-uncommitted value of an open transaction
    /// (writer id, writer serial, writer generation). The generation lets a
    /// republish distinguish readers of the *current* value from readers of
    /// a rolled-back predecessor.
    Spec(TxnId, Serial, u64),
}

/// A registered (uncommitted) reader of a variable.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReaderRec {
    pub serial: Serial,
    pub txn: TxnId,
    pub kind: ReadKind,
}

/// A registered (uncommitted) writer of a variable. `published` is `None`
/// while the writer is still active (its buffered value is private) and
/// `Some` once the writer has published (entered the open state).
#[derive(Debug, Clone)]
pub(crate) struct WriterRec {
    pub serial: Serial,
    pub txn: TxnId,
    /// The writer's generation when this record was (last) updated.
    pub generation: u64,
    pub published: Option<DynValue>,
}

/// Shared conflict metadata of one variable. The committed value itself
/// lives on the [`VarCell`], guarded by the striped value locks, so the
/// fast read path never takes this mutex.
pub(crate) struct VarMeta {
    pub version: u64,
    /// Serial of the transaction whose commit produced the committed value,
    /// if any. Used only to detect serial inversions under
    /// `CommitOrder::Conflict`.
    pub last_commit_serial: Option<Serial>,
    /// Uncommitted writers, kept sorted by serial.
    pub writers: Vec<WriterRec>,
    /// Uncommitted readers.
    pub readers: Vec<ReaderRec>,
}

impl VarMeta {
    /// Fresh metadata for a new variable.
    ///
    /// The record vectors reserve a couple of slots up front so the *first*
    /// writer/reader registration of a cold variable — which can happen
    /// inside the allocation-fenced publish — does not allocate. Growth
    /// beyond that is a genuine high-water mark and persists.
    pub fn new() -> Self {
        VarMeta {
            version: 0,
            last_commit_serial: None,
            writers: Vec::with_capacity(2),
            readers: Vec::with_capacity(2),
        }
    }
}

impl fmt::Debug for VarMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VarMeta")
            .field("version", &self.version)
            .field("writers", &self.writers.len())
            .field("readers", &self.readers.len())
            .finish()
    }
}

impl VarMeta {
    /// Latest *published* writer with serial ≤ `upto`, if any.
    #[cfg(test)]
    pub fn visible_writer(&self, upto: Serial) -> Option<&WriterRec> {
        self.visible_writer_excluding(upto, &[])
    }

    /// Like [`VarMeta::visible_writer`] but ignoring the given transactions
    /// (used to skip ghost records of aborted writers).
    pub fn visible_writer_excluding(&self, upto: Serial, skip: &[TxnId]) -> Option<&WriterRec> {
        self.writers
            .iter()
            .filter(|w| w.serial <= upto && w.published.is_some() && !skip.contains(&w.txn))
            .max_by_key(|w| w.serial)
    }

    /// Inserts or replaces the reader record for `rec.txn`.
    pub fn upsert_reader(&mut self, rec: ReaderRec) {
        if let Some(existing) = self.readers.iter_mut().find(|r| r.txn == rec.txn) {
            *existing = rec;
        } else {
            self.readers.push(rec);
        }
    }

    /// Inserts or replaces the writer record for `txn`, keeping order.
    pub fn upsert_writer(&mut self, rec: WriterRec) {
        if let Some(existing) = self.writers.iter_mut().find(|w| w.txn == rec.txn) {
            *existing = rec;
        } else {
            let pos = self.writers.partition_point(|w| w.serial <= rec.serial);
            self.writers.insert(pos, rec);
        }
    }

    /// Removes all records (reader and writer) belonging to `txn`.
    pub fn remove_txn(&mut self, txn: TxnId) {
        self.writers.retain(|w| w.txn != txn);
        self.readers.retain(|r| r.txn != txn);
    }
}

/// Untyped interior of a variable.
///
/// # Fast word
///
/// `fast` packs `(version << 1) | writers_present` and is kept in sync with
/// `meta` by [`VarCell::resync_fast`], called under the meta lock after any
/// mutation of `version` or the writer set. Read-only transactions use it
/// seqlock-style: load the word, clone the committed value under the stripe
/// lock, re-load the word — an unchanged word with a clear writers bit
/// proves the clone is the committed value at that version, with no
/// uncommitted writer whose value could have been visible instead.
pub(crate) struct VarCell {
    pub id: VarId,
    /// `(version << 1) | (writers non-empty)`; see the type docs.
    fast: AtomicU64,
    /// The committed value, guarded by `stripe_of(id)` — NOT by `meta`.
    /// Lock order: `meta` may be held while taking the stripe; never the
    /// reverse.
    value: UnsafeCell<DynValue>,
    pub meta: Mutex<VarMeta>,
}

// SAFETY: `value` is only accessed while holding the stripe spinlock for
// this cell's id (see `committed_*` methods), which serializes all access.
unsafe impl Sync for VarCell {}

impl VarCell {
    /// Creates a cell holding `initial` as the committed value.
    pub fn new(id: VarId, initial: DynValue) -> Self {
        VarCell {
            id,
            fast: AtomicU64::new(0),
            value: UnsafeCell::new(initial),
            meta: Mutex::new(VarMeta::new()),
        }
    }

    /// Current fast word: `(version << 1) | writers_present`.
    pub fn fast_word(&self) -> u64 {
        self.fast.load(Ordering::Acquire)
    }

    /// Re-derives the fast word from `meta`. Must be called (under the meta
    /// lock) after any change to `meta.version` or `meta.writers`.
    pub fn resync_fast(&self, meta: &VarMeta) {
        self.fast
            .store((meta.version << 1) | u64::from(!meta.writers.is_empty()), Ordering::Release);
    }

    /// Clones the committed value under the stripe lock. Returns `None`
    /// instead of spinning when the stripe is contended (the caller falls
    /// back to the slow path).
    pub fn committed_try_clone(&self) -> Option<DynValue> {
        let stripe = stripe_of(self.id);
        if !stripe.try_lock() {
            return None;
        }
        // SAFETY: stripe lock held.
        let v = unsafe { (*self.value.get()).clone() };
        stripe.unlock();
        Some(v)
    }

    /// Clones the committed value (blocking on the stripe).
    pub fn committed_clone(&self) -> DynValue {
        let stripe = stripe_of(self.id);
        stripe.lock();
        // SAFETY: stripe lock held.
        let v = unsafe { (*self.value.get()).clone() };
        stripe.unlock();
        v
    }

    /// Replaces the committed value under the stripe lock. Callers must
    /// hold the meta lock (commit/restore discipline) so concurrent commits
    /// cannot interleave.
    pub fn set_committed(&self, value: DynValue) {
        let stripe = stripe_of(self.id);
        stripe.lock();
        // SAFETY: stripe lock held. The old value drops after unlock.
        let old = unsafe { std::mem::replace(&mut *self.value.get(), value) };
        stripe.unlock();
        drop(old);
    }
}

impl fmt::Debug for VarCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VarCell").field("id", &self.id).finish()
    }
}

/// A typed transactional variable.
///
/// Create with [`StmRuntime::new_var`](crate::StmRuntime::new_var); access
/// inside transactions via [`Txn::read`](crate::txn::Txn::read) and
/// [`Txn::write`](crate::txn::Txn::write).
///
/// ```
/// use streammine_stm::{StmRuntime, Serial};
///
/// let rt = StmRuntime::new();
/// let counter = rt.new_var(0i64);
/// let (handle, _) = rt
///     .execute(Serial(0), |txn| {
///         let v = *txn.read(&counter)?;
///         txn.write(&counter, v + 1)?;
///         Ok(())
///     })
///     .expect("not shut down");
/// handle.authorize();
/// handle.wait_committed();
/// assert_eq!(*counter.load(), 1);
/// ```
pub struct TVar<T> {
    pub(crate) cell: Arc<VarCell>,
    pub(crate) _pd: PhantomData<fn() -> T>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar { cell: self.cell.clone(), _pd: PhantomData }
    }
}

impl<T> fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TVar").field("id", &self.cell.id).finish()
    }
}

impl<T: Send + Sync + 'static> TVar<T> {
    /// The variable's id (useful for diagnostics).
    pub fn id(&self) -> VarId {
        self.cell.id
    }

    /// Reads the last *committed* value, bypassing any transaction.
    ///
    /// Published-but-uncommitted speculative values are not visible here;
    /// use this for initialization, checkpointing and assertions only.
    pub fn load(&self) -> Arc<T> {
        self.cell.committed_clone().downcast::<T>().expect("type confusion in TVar")
    }

    /// Committed version counter (bumps once per committed write).
    pub fn version(&self) -> u64 {
        self.cell.meta.lock().version
    }

    /// Replaces the committed value outside any transaction.
    ///
    /// Intended for state restoration during recovery, *before* the
    /// operator resumes processing.
    ///
    /// # Panics
    ///
    /// Panics if uncommitted writers are registered on the variable — that
    /// would mean restore raced live transactions.
    pub fn restore(&self, value: T) {
        let mut meta = self.cell.meta.lock();
        assert!(
            meta.writers.is_empty(),
            "restore() while transactions are in flight on {}",
            self.cell.id
        );
        self.cell.set_committed(Arc::new(value));
        meta.version += 1;
        self.cell.resync_fast(&meta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> VarMeta {
        VarMeta::new()
    }

    fn w(serial: u64, txn: u64, published: bool) -> WriterRec {
        WriterRec {
            serial: Serial(serial),
            txn: TxnId(txn),
            generation: 0,
            published: published.then(|| Arc::new(1i64) as DynValue),
        }
    }

    #[test]
    fn visible_writer_picks_latest_published_at_or_below() {
        let mut m = cell();
        m.upsert_writer(w(1, 10, true));
        m.upsert_writer(w(3, 11, true));
        m.upsert_writer(w(5, 12, false)); // active, invisible
        m.upsert_writer(w(7, 13, true)); // later than query
        let vis = m.visible_writer(Serial(6)).unwrap();
        assert_eq!(vis.txn, TxnId(11));
        assert!(m.visible_writer(Serial(0)).is_none());
    }

    #[test]
    fn upsert_keeps_serial_order_and_replaces() {
        let mut m = cell();
        m.upsert_writer(w(5, 1, false));
        m.upsert_writer(w(1, 2, false));
        m.upsert_writer(w(3, 3, false));
        let serials: Vec<u64> = m.writers.iter().map(|x| x.serial.0).collect();
        assert_eq!(serials, vec![1, 3, 5]);
        // Replace txn 3's record with a published one.
        m.upsert_writer(w(3, 3, true));
        assert_eq!(m.writers.len(), 3);
        assert!(m.writers[1].published.is_some());
    }

    #[test]
    fn remove_txn_clears_both_sides() {
        let mut m = cell();
        m.upsert_writer(w(1, 7, true));
        m.readers.push(ReaderRec {
            serial: Serial(2),
            txn: TxnId(7),
            kind: ReadKind::Committed(0),
        });
        m.readers.push(ReaderRec {
            serial: Serial(2),
            txn: TxnId(8),
            kind: ReadKind::Committed(0),
        });
        m.remove_txn(TxnId(7));
        assert!(m.writers.is_empty());
        assert_eq!(m.readers.len(), 1);
        assert_eq!(m.readers[0].txn, TxnId(8));
    }
}

//! Owner-facing transaction handle.

use std::fmt;
use std::sync::Arc;

use crate::runtime::StmRuntime;
use crate::txn::TxnState;
use crate::types::{Serial, TxnId, TxnStatus};

/// Handle to a transaction, held by its owner (the operator runtime).
///
/// After [`StmRuntime::execute`] returns, the transaction is *open*:
/// executed and published but uncommitted. The owner then:
///
/// 1. waits for the commit gate (input events final, decision log stable),
/// 2. calls [`TxnHandle::authorize`],
/// 3. optionally blocks on [`TxnHandle::wait_outcome`].
///
/// If the input event is replaced by a newer speculative version, the owner
/// calls [`TxnHandle::revoke`] and then either
/// [`StmRuntime::reexecute`] (new content) or [`TxnHandle::discard`]
/// (event withdrawn entirely).
#[derive(Clone)]
pub struct TxnHandle {
    pub(crate) runtime: StmRuntime,
    pub(crate) state: Arc<TxnState>,
}

impl fmt::Debug for TxnHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxnHandle")
            .field("id", &self.state.id)
            .field("serial", &self.state.serial)
            .field("status", &self.status())
            .finish()
    }
}

impl TxnHandle {
    /// The transaction's id.
    pub fn id(&self) -> TxnId {
        self.state.id
    }

    /// The transaction's serial.
    pub fn serial(&self) -> Serial {
        self.state.serial
    }

    pub(crate) fn state(&self) -> &Arc<TxnState> {
        &self.state
    }

    /// Current lifecycle status.
    pub fn status(&self) -> TxnStatus {
        self.runtime.inner.status(&self.state)
    }

    /// Number of open transactions this one depended on when it published.
    /// Zero means its outputs were unaffected by any speculation — the
    /// engine may emit them as final as soon as its own log is stable
    /// (the paper's fine-grained tainting rule, §3.1).
    pub fn publish_deps(&self) -> usize {
        self.runtime.inner.publish_deps(&self.state)
    }

    /// Number of *currently outstanding* dependencies.
    pub fn current_deps(&self) -> usize {
        self.runtime.inner.current_deps(&self.state)
    }

    /// Grants commit authorization (inputs final + own log stable). The
    /// transaction commits as soon as dependency closure and commit order
    /// allow; this call never blocks.
    pub fn authorize(&self) {
        self.runtime.inner.authorize(self.state.id);
    }

    /// Aborts the transaction (cascading to dependents). The owner is
    /// expected to either [`StmRuntime::reexecute`] or
    /// [`TxnHandle::discard`] afterwards.
    pub fn revoke(&self) {
        self.runtime.inner.count_abort(crate::types::AbortReason::Revoked);
        self.runtime.inner.revoke(self.state.id);
    }

    /// Permanently removes the transaction, unblocking the commit frontier.
    /// Implies [`TxnHandle::revoke`] if still live.
    pub fn discard(&self) {
        self.runtime.inner.discard(&self.state);
    }

    /// Blocks until the transaction commits or aborts and returns which.
    pub fn wait_outcome(&self) -> TxnStatus {
        self.runtime.inner.wait_outcome(&self.state)
    }

    /// Blocks until the transaction commits.
    ///
    /// # Panics
    ///
    /// Panics if the transaction is discarded while waiting.
    pub fn wait_committed(&self) {
        self.runtime.inner.wait_committed(&self.state);
    }
}

//! Runtime statistics.
//!
//! The abort-rate and speed-up plots of the paper (Figure 5) are computed
//! from these counters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters; snapshot via [`StmStats::snapshot`].
#[derive(Debug, Default)]
pub(crate) struct StmStats {
    pub started: AtomicU64,
    pub committed: AtomicU64,
    pub retries: AtomicU64,
    pub aborts_conflict: AtomicU64,
    pub aborts_stale: AtomicU64,
    pub aborts_cascade: AtomicU64,
    pub aborts_revoked: AtomicU64,
    pub spec_reads: AtomicU64,
    pub publishes: AtomicU64,
    pub serial_inversions: AtomicU64,
    pub fastpath_hits: AtomicU64,
    pub fastpath_fallbacks: AtomicU64,
}

impl StmStats {
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            started: self.started.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            aborts_conflict: self.aborts_conflict.load(Ordering::Relaxed),
            aborts_stale: self.aborts_stale.load(Ordering::Relaxed),
            aborts_cascade: self.aborts_cascade.load(Ordering::Relaxed),
            aborts_revoked: self.aborts_revoked.load(Ordering::Relaxed),
            spec_reads: self.spec_reads.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            serial_inversions: self.serial_inversions.load(Ordering::Relaxed),
            fastpath_hits: self.fastpath_hits.load(Ordering::Relaxed),
            fastpath_fallbacks: self.fastpath_fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of an [`StmRuntime`](crate::StmRuntime)'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Transactions begun (first attempts only).
    pub started: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Body re-executions (any reason).
    pub retries: u64,
    /// Aborts due to write/write or read/write conflicts between active
    /// transactions.
    pub aborts_conflict: u64,
    /// Aborts because an earlier-serial publish invalidated a read.
    pub aborts_stale: u64,
    /// Cascade aborts (a dependency aborted).
    pub aborts_cascade: u64,
    /// Aborts from owner revocation.
    pub aborts_revoked: u64,
    /// Reads served from a published-but-uncommitted write (speculative
    /// value forwarding).
    pub spec_reads: u64,
    /// Successful publishes (transitions to the open state).
    pub publishes: u64,
    /// Reads that observed state committed by a later-serial transaction
    /// (possible only under `CommitOrder::Conflict`; diagnostic).
    pub serial_inversions: u64,
    /// Reads served by the striped-lock fast path (no per-var mutex).
    pub fastpath_hits: u64,
    /// Reads that attempted the fast path but fell back to the per-var
    /// mutex (stripe contention or a version/writer change mid-read).
    pub fastpath_fallbacks: u64,
}

impl StatsSnapshot {
    /// Total aborts across all reasons.
    pub fn aborts_total(&self) -> u64 {
        self.aborts_conflict + self.aborts_stale + self.aborts_cascade + self.aborts_revoked
    }

    /// Fraction of executions (first attempts + retries) that aborted;
    /// the y-axis of the middle panel of Figure 5.
    pub fn abort_ratio(&self) -> f64 {
        let executions = self.started + self.retries;
        if executions == 0 {
            0.0
        } else {
            self.aborts_total() as f64 / executions as f64
        }
    }

    /// The counters as `(name, value)` pairs, for generic export into a
    /// metrics registry without the registry crate depending on the STM's
    /// field layout. Names are stable and dotted (`stm.<counter>`).
    pub fn fields(&self) -> [(&'static str, u64); 12] {
        [
            ("stm.started", self.started),
            ("stm.committed", self.committed),
            ("stm.retries", self.retries),
            ("stm.aborts_conflict", self.aborts_conflict),
            ("stm.aborts_stale", self.aborts_stale),
            ("stm.aborts_cascade", self.aborts_cascade),
            ("stm.aborts_revoked", self.aborts_revoked),
            ("stm.spec_reads", self.spec_reads),
            ("stm.publishes", self.publishes),
            ("stm.serial_inversions", self.serial_inversions),
            ("stm.fastpath.hits", self.fastpath_hits),
            ("stm.fastpath.fallbacks", self.fastpath_fallbacks),
        ]
    }

    /// Difference of two snapshots (for windowed rates).
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            started: self.started - earlier.started,
            committed: self.committed - earlier.committed,
            retries: self.retries - earlier.retries,
            aborts_conflict: self.aborts_conflict - earlier.aborts_conflict,
            aborts_stale: self.aborts_stale - earlier.aborts_stale,
            aborts_cascade: self.aborts_cascade - earlier.aborts_cascade,
            aborts_revoked: self.aborts_revoked - earlier.aborts_revoked,
            spec_reads: self.spec_reads - earlier.spec_reads,
            publishes: self.publishes - earlier.publishes,
            serial_inversions: self.serial_inversions - earlier.serial_inversions,
            fastpath_hits: self.fastpath_hits - earlier.fastpath_hits,
            fastpath_fallbacks: self.fastpath_fallbacks - earlier.fastpath_fallbacks,
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "started={} committed={} retries={} aborts(conflict={}, stale={}, cascade={}, revoked={}) spec_reads={}",
            self.started,
            self.committed,
            self.retries,
            self.aborts_conflict,
            self.aborts_stale,
            self.aborts_cascade,
            self.aborts_revoked,
            self.spec_reads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_ratio_counts_all_reasons_over_executions() {
        let s = StatsSnapshot {
            started: 8,
            retries: 2,
            aborts_conflict: 1,
            aborts_cascade: 1,
            ..Default::default()
        };
        assert_eq!(s.aborts_total(), 2);
        assert!((s.abort_ratio() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn abort_ratio_of_empty_snapshot_is_zero() {
        assert_eq!(StatsSnapshot::default().abort_ratio(), 0.0);
    }

    #[test]
    fn fields_cover_every_counter() {
        let s = StatsSnapshot {
            started: 1,
            committed: 2,
            retries: 3,
            aborts_conflict: 4,
            aborts_stale: 5,
            aborts_cascade: 6,
            aborts_revoked: 7,
            spec_reads: 8,
            publishes: 9,
            serial_inversions: 10,
            fastpath_hits: 11,
            fastpath_fallbacks: 12,
        };
        let fields = s.fields();
        assert_eq!(fields.len(), 12);
        let total: u64 = fields.iter().map(|(_, v)| v).sum();
        assert_eq!(total, (1..=12).sum::<u64>(), "a counter is missing from fields()");
        assert!(fields.iter().all(|(n, _)| n.starts_with("stm.")));
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = StatsSnapshot { started: 10, committed: 7, ..Default::default() };
        let b = StatsSnapshot { started: 4, committed: 2, ..Default::default() };
        let d = a.delta_since(&b);
        assert_eq!(d.started, 6);
        assert_eq!(d.committed, 5);
    }
}

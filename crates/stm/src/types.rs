//! Core identifier and status types for the speculative STM.

use std::fmt;

/// Identifies a transaction within one [`StmRuntime`](crate::StmRuntime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub(crate) u64);

impl TxnId {
    /// Raw numeric id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// Identifies a transactional variable within one runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u64);

impl VarId {
    /// Raw numeric id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "var{}", self.0)
    }
}

/// Logical arrival order of the event a transaction processes.
///
/// Serials define the order in which conflicting transactions must appear to
/// have executed; with [`CommitOrder::Timestamp`] they also define the commit
/// order. The paper calls this the "application timestamp of the event"
/// (§5): *"the order that transactions commit [must] also obey the
/// application timestamps of the event"*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Serial(pub u64);

impl fmt::Display for Serial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Lifecycle of a transaction.
///
/// ```text
/// Active ──publish──▶ Open ──commit──▶ Committed
///   ▲                   │
///   └──── re-execute ───┴──▶ Aborted ──▶ (removed)
/// ```
///
/// *Active*: the processing function is running; writes are private.
/// *Open*: execution finished and the write set is *published* (visible to
/// later speculative transactions) but nothing is committed yet — the paper's
/// "pre-commit stage" where the transaction "waits ... and does not
/// unregister itself from the lock array" (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Executing (or re-executing) the body.
    Active,
    /// Executed; write set published; awaiting commit authorization.
    Open,
    /// Mid-commit (transient; observable only briefly).
    Committing,
    /// Durably applied to the shared state.
    Committed,
    /// Rolled back; will be retried or discarded by its owner.
    Aborted,
}

impl TxnStatus {
    /// `true` for [`TxnStatus::Committed`] and [`TxnStatus::Aborted`].
    pub fn is_terminal(self) -> bool {
        matches!(self, TxnStatus::Committed | TxnStatus::Aborted)
    }
}

impl fmt::Display for TxnStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxnStatus::Active => "active",
            TxnStatus::Open => "open",
            TxnStatus::Committing => "committing",
            TxnStatus::Committed => "committed",
            TxnStatus::Aborted => "aborted",
        };
        f.write_str(s)
    }
}

/// Why a transaction was (or must be) aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// Write-write or read-write conflict with a concurrent transaction;
    /// per the paper's policy the *later-arriving* transaction aborts.
    Conflict,
    /// An earlier-serial transaction published a write that invalidates a
    /// value this transaction read.
    StaleRead,
    /// A transaction this one depended on (read its published writes)
    /// aborted, so this one must cascade-abort.
    Cascade,
    /// The owner revoked the transaction (e.g. its input event was replaced
    /// by a new speculative version).
    Revoked,
    /// A re-execution was requested but another executor already produced
    /// a live (published or committed) generation — nothing to do.
    Superseded,
    /// The runtime is shutting down.
    Shutdown,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::Conflict => "conflict with concurrent transaction",
            AbortReason::StaleRead => "read invalidated by earlier-serial write",
            AbortReason::Cascade => "cascade from aborted dependency",
            AbortReason::Revoked => "revoked by owner",
            AbortReason::Superseded => "superseded by a live generation",
            AbortReason::Shutdown => "runtime shutdown",
        };
        f.write_str(s)
    }
}

/// Error returned from transactional operations when the transaction cannot
/// continue and must be retried (or dropped).
///
/// The executor ([`crate::executor`]) catches this and re-runs the body;
/// operator code simply propagates it with `?`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmAbort {
    /// Why the transaction is being torn down.
    pub reason: AbortReason,
}

impl fmt::Display for StmAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction aborted: {}", self.reason)
    }
}

impl std::error::Error for StmAbort {}

/// Commit ordering policy for a runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitOrder {
    /// Commits happen in strict serial (event-timestamp) order. This is the
    /// sound default: a later re-execution of an earlier transaction can
    /// never invalidate an already-committed later transaction, because no
    /// later transaction commits first.
    #[default]
    Timestamp,
    /// A transaction may commit as soon as all its *observed* dependencies
    /// have committed and every earlier-serial transaction has at least
    /// published (so all conflicts are visible). Matches the paper's §3.1
    /// example where final event `E2` overtakes speculative `E1′`; lower
    /// final-output latency, but an earlier transaction whose *re-execution*
    /// grows its write set can no longer retroactively affect a committed
    /// later transaction — use only when inputs can shrink speculation
    /// windows safely. Benchmarked in `ablation_dependency_tracking`.
    Conflict,
}

/// Dependency tracking granularity (ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DependencyMode {
    /// Track dependencies per memory location via read/write sets (the
    /// paper's contribution; §3.1 case (i) argues for this).
    #[default]
    FineGrained,
    /// Pessimistically treat every transaction as dependent on all earlier
    /// still-open transactions of the runtime — the "simple dependency
    /// relation" straw-man the paper argues against.
    TaintAll,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert_eq!(TxnId(3).to_string(), "txn3");
        assert_eq!(VarId(9).to_string(), "var9");
        assert_eq!(Serial(2).to_string(), "s2");
        assert_eq!(TxnStatus::Open.to_string(), "open");
        assert!(StmAbort { reason: AbortReason::Cascade }.to_string().contains("cascade"));
    }

    #[test]
    fn terminal_statuses() {
        assert!(TxnStatus::Committed.is_terminal());
        assert!(TxnStatus::Aborted.is_terminal());
        assert!(!TxnStatus::Open.is_terminal());
        assert!(!TxnStatus::Active.is_terminal());
        assert!(!TxnStatus::Committing.is_terminal());
    }

    #[test]
    fn serial_orders_numerically() {
        assert!(Serial(1) < Serial(2));
    }

    #[test]
    fn defaults_are_the_sound_policies() {
        assert_eq!(CommitOrder::default(), CommitOrder::Timestamp);
        assert_eq!(DependencyMode::default(), DependencyMode::FineGrained);
    }
}

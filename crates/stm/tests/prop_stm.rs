//! Property-based tests for the speculative STM.
//!
//! The central invariant: whatever interleaving, conflict pattern, retry
//! storm or cascade happens, the committed state equals the sequential
//! application of all tasks in serial order (timestamp-ordered commits make
//! the history serializable in exactly that order).

use std::sync::Arc;

use proptest::prelude::*;
use streammine_stm::{Serial, Speculator, StmRuntime, TArray};

/// One synthetic task: add `delta` to `slots` (read-modify-write each).
#[derive(Debug, Clone)]
struct TaskSpec {
    slots: Vec<usize>,
    delta: i64,
}

fn task_strategy(fields: usize) -> impl Strategy<Value = TaskSpec> {
    (proptest::collection::vec(0..fields, 1..4), -5i64..=5).prop_map(|(mut slots, delta)| {
        slots.sort_unstable();
        slots.dedup();
        TaskSpec { slots, delta }
    })
}

fn sequential_apply(fields: usize, tasks: &[TaskSpec]) -> Vec<i64> {
    let mut state = vec![0i64; fields];
    for t in tasks {
        for &s in &t.slots {
            state[s] += t.delta;
        }
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn parallel_execution_is_serializable_in_serial_order(
        fields in 1usize..6,
        threads in 2usize..5,
        tasks in proptest::collection::vec(task_strategy(5), 1..40),
    ) {
        let tasks: Vec<TaskSpec> = tasks
            .into_iter()
            .map(|mut t| { t.slots.retain(|&s| s < fields); t })
            .filter(|t| !t.slots.is_empty())
            .collect();
        let rt = StmRuntime::new();
        let arr = Arc::new(TArray::new(&rt, fields, 0i64));
        let spec = Speculator::new(rt.clone(), threads);
        for (i, t) in tasks.iter().enumerate() {
            let arr = arr.clone();
            let t = t.clone();
            spec.submit(Serial(i as u64), move |txn| {
                for &s in &t.slots {
                    arr.update(txn, s, |v| v + t.delta)?;
                }
                Ok(())
            });
        }
        spec.wait_idle();
        let expected = sequential_apply(fields, &tasks);
        prop_assert_eq!(arr.load_vec(), expected);
        prop_assert_eq!(rt.stats().committed, tasks.len() as u64);
        spec.shutdown();
    }

    #[test]
    fn order_sensitive_ops_commit_in_serial_order(
        threads in 2usize..5,
        n in 1usize..24,
    ) {
        // Non-commutative updates (multiply-then-add) detect any ordering
        // violation, unlike plain addition.
        let rt = StmRuntime::new();
        let var = rt.new_var(1i64);
        let spec = Speculator::new(rt.clone(), threads);
        for i in 0..n as u64 {
            let var = var.clone();
            spec.submit(Serial(i), move |txn| {
                txn.update(&var, |v| v.wrapping_mul(3).wrapping_add(i as i64))
            });
        }
        spec.wait_idle();
        let mut expected = 1i64;
        for i in 0..n as i64 {
            expected = expected.wrapping_mul(3).wrapping_add(i);
        }
        prop_assert_eq!(*var.load(), expected);
        spec.shutdown();
    }

    #[test]
    fn revoke_and_reexecute_yields_revised_value(
        initial in -100i64..100,
        first in -100i64..100,
        second in -100i64..100,
    ) {
        let rt = StmRuntime::new();
        let var = rt.new_var(initial);
        let (h, ()) = rt.execute(Serial(0), |txn| txn.write(&var, first)).expect("live");
        h.revoke();
        rt.reexecute(&h, |txn| txn.write(&var, second)).expect("reexecute");
        h.authorize();
        h.wait_committed();
        prop_assert_eq!(*var.load(), second);
    }

    #[test]
    fn discarded_transactions_leave_no_trace(
        initial in -100i64..100,
        attempted in -100i64..100,
    ) {
        let rt = StmRuntime::new();
        let var = rt.new_var(initial);
        let (h, ()) = rt.execute(Serial(0), |txn| txn.write(&var, attempted)).expect("live");
        h.discard();
        // A later transaction sees the untouched initial value and commits.
        let (h2, seen) = rt.execute(Serial(1), |txn| Ok(*txn.read(&var)?)).expect("live");
        prop_assert_eq!(seen, initial);
        h2.authorize();
        h2.wait_committed();
        prop_assert_eq!(*var.load(), initial);
    }
}

//! Fast-path / slow-path equivalence (satellite of the hot-path campaign).
//!
//! The striped-lock fast path serves reads without taking the per-variable
//! metadata mutex. Its correctness claim: a workload executed with the fast
//! path enabled reaches exactly the state the slow path reaches — same
//! committed count, same final values — i.e. fast reads observe the same
//! serializable (serial-ordered) snapshot the slow path constructs.
//!
//! Each case runs one random op-set twice through a 3-thread [`Speculator`],
//! once per `fastpath` setting, and compares outcomes. Abort/retry *counts*
//! are not compared: retries depend on scheduling, and the two modes take
//! different code paths under contention by design. Scans over a frozen
//! (never-written) array guarantee genuine fast-path hits in the enabled
//! run, and any stale or torn fast read there would surface as a value
//! other than the constant.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use streammine_stm::{Serial, Speculator, StmConfig, StmRuntime, TArray};

const FROZEN_VALUE: i64 = 7;

/// One synthetic task: a read-modify-write over a few mutable slots, or a
/// read-only scan across the frozen and mutable arrays.
#[derive(Debug, Clone)]
enum Op {
    Update { slots: Vec<usize>, delta: i64 },
    Scan { slots: Vec<usize> },
}

fn op_strategy(fields: usize) -> impl Strategy<Value = Op> {
    let slots = || {
        proptest::collection::vec(0..fields, 1..4).prop_map(|mut s| {
            s.sort_unstable();
            s.dedup();
            s
        })
    };
    prop_oneof![
        (slots(), -5i64..=5).prop_map(|(slots, delta)| Op::Update { slots, delta }),
        slots().prop_map(|slots| Op::Scan { slots }),
    ]
}

fn sequential_apply(fields: usize, ops: &[Op]) -> Vec<i64> {
    let mut state = vec![0i64; fields];
    for op in ops {
        if let Op::Update { slots, delta } = op {
            for &s in slots {
                state[s] += delta;
            }
        }
    }
    state
}

struct RunOutcome {
    final_state: Vec<i64>,
    committed: u64,
    fastpath_hits: u64,
    frozen_violations: u64,
}

fn run_workload(fields: usize, ops: &[Op], fastpath: bool) -> RunOutcome {
    let rt = StmRuntime::with_config(StmConfig { fastpath, ..StmConfig::default() });
    let mutable = Arc::new(TArray::new(&rt, fields, 0i64));
    let frozen = Arc::new(TArray::new(&rt, fields, FROZEN_VALUE));
    let violations = Arc::new(AtomicU64::new(0));
    let spec = Speculator::new(rt.clone(), 3);
    for (i, op) in ops.iter().enumerate() {
        let mutable = mutable.clone();
        let frozen = frozen.clone();
        let violations = violations.clone();
        let op = op.clone();
        spec.submit(Serial(i as u64), move |txn| {
            match &op {
                Op::Update { slots, delta } => {
                    for &s in slots {
                        mutable.update(txn, s, |v| v + delta)?;
                    }
                }
                Op::Scan { slots } => {
                    for &s in slots {
                        // Frozen slots have no writers ever, so with the
                        // fast path enabled these reads hit it; either way
                        // they must observe the constant.
                        if *frozen.get(txn, s)? != FROZEN_VALUE {
                            violations.fetch_add(1, Ordering::Relaxed);
                        }
                        let _ = *mutable.get(txn, s)?;
                    }
                }
            }
            Ok(())
        });
    }
    spec.wait_idle();
    let stats = rt.stats();
    let outcome = RunOutcome {
        final_state: mutable.load_vec(),
        committed: stats.committed,
        fastpath_hits: stats.fastpath_hits,
        frozen_violations: violations.load(Ordering::Relaxed),
    };
    spec.shutdown();
    outcome
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn fastpath_and_slowpath_reach_the_same_state(
        fields in 1usize..5,
        ops in proptest::collection::vec(op_strategy(4), 1..32),
    ) {
        let ops: Vec<Op> = ops
            .into_iter()
            .map(|mut op| {
                match &mut op {
                    Op::Update { slots, .. } | Op::Scan { slots } => {
                        slots.retain(|&s| s < fields);
                    }
                }
                op
            })
            .filter(|op| match op {
                Op::Update { slots, .. } | Op::Scan { slots } => !slots.is_empty(),
            })
            .collect();
        if ops.is_empty() {
            return Ok(()); // filtering emptied the case; trivially holds
        }

        let fast = run_workload(fields, &ops, true);
        let slow = run_workload(fields, &ops, false);
        let expected = sequential_apply(fields, &ops);

        prop_assert_eq!(fast.frozen_violations, 0, "fast path returned a wrong constant");
        prop_assert_eq!(slow.frozen_violations, 0);

        // Both modes serialize to the sequential application in serial
        // order, commit every task exactly once, and agree with each other.
        prop_assert_eq!(&fast.final_state, &expected);
        prop_assert_eq!(&slow.final_state, &expected);
        prop_assert_eq!(fast.committed, ops.len() as u64);
        prop_assert_eq!(slow.committed, ops.len() as u64);

        // The A/B knob is live: disabled means zero fast reads, enabled
        // means the frozen-array scans (if any) actually took the fast path.
        prop_assert_eq!(slow.fastpath_hits, 0);
        if ops.iter().any(|op| matches!(op, Op::Scan { .. })) {
            prop_assert!(fast.fastpath_hits > 0, "scans present but no fast-path hits");
        }
    }
}

//! Concurrency stress tests: many rounds of adversarial interleavings.
//!
//! These exist because the protocol's historical bugs (generation races,
//! lost wake-ups, cleanup races, admission starvation) only reproduced
//! under repetition. Each round is small; the rounds are many.

use std::sync::Arc;

use streammine_stm::{Serial, Speculator, StmRuntime, TArray, TMap};

#[test]
fn serial_order_stress() {
    // Fully conflicting append-log: the committed order must be exactly
    // ascending in every round.
    for round in 0..60 {
        let rt = StmRuntime::new();
        let log = rt.new_var(Vec::<u64>::new());
        let spec = Speculator::new(rt.clone(), 4);
        for i in 0..24u64 {
            let log = log.clone();
            spec.submit(Serial(i), move |txn| {
                txn.update(&log, |v| {
                    let mut v = v.clone();
                    v.push(i);
                    v
                })
            });
        }
        spec.wait_idle();
        let expect: Vec<u64> = (0..24).collect();
        assert_eq!(*log.load(), expect, "ordering violated in round {round}");
        spec.shutdown();
        rt.shutdown();
    }
}

#[test]
fn mixed_contention_stress() {
    // A hot cell plus many cold cells: hot traffic serializes, cold
    // parallelizes, nothing is lost either way.
    for round in 0..30 {
        let rt = StmRuntime::new();
        let hot = rt.new_var(0i64);
        let cold = Arc::new(TArray::new(&rt, 16, 0i64));
        let spec = Speculator::new(rt.clone(), 4);
        for i in 0..60u64 {
            let hot = hot.clone();
            let cold = cold.clone();
            spec.submit(Serial(i), move |txn| {
                if i % 3 == 0 {
                    txn.update(&hot, |v| v + 1)
                } else {
                    cold.update(txn, (i as usize * 31) % 16, |v| v + 1)
                }
            });
        }
        spec.wait_idle();
        assert_eq!(*hot.load(), 20, "hot counter lost updates in round {round}");
        let cold_total: i64 = cold.load_vec().iter().sum();
        assert_eq!(cold_total, 40, "cold counters lost updates in round {round}");
        spec.shutdown();
    }
}

#[test]
fn tmap_under_contention() {
    for _round in 0..20 {
        let rt = StmRuntime::new();
        let map: Arc<TMap<u64, i64>> = Arc::new(TMap::with_buckets(&rt, 8));
        let spec = Speculator::new(rt.clone(), 4);
        for i in 0..40u64 {
            let map = map.clone();
            spec.submit(Serial(i), move |txn| {
                let key = i % 10;
                let prev = map.get(txn, &key)?.unwrap_or(0);
                map.insert(txn, key, prev + 1)?;
                Ok(())
            });
        }
        spec.wait_idle();
        for key in 0..10u64 {
            assert_eq!(map.get_committed(&key), Some(4), "key {key} lost increments");
        }
        spec.shutdown();
    }
}

#[test]
fn small_window_still_completes() {
    // A speculation window of 1 degenerates to sequential execution but
    // must never wedge.
    let rt = StmRuntime::new();
    let var = rt.new_var(0i64);
    let spec = Speculator::with_window(rt.clone(), 3, 1);
    for i in 0..50u64 {
        let var = var.clone();
        spec.submit(Serial(i), move |txn| txn.update(&var, |v| v + 1));
    }
    spec.wait_idle();
    assert_eq!(*var.load(), 50);
    spec.shutdown();
}

#[test]
fn huge_window_still_correct() {
    let rt = StmRuntime::new();
    let var = rt.new_var(0i64);
    let spec = Speculator::with_window(rt.clone(), 4, u64::MAX / 2);
    for i in 0..80u64 {
        let var = var.clone();
        spec.submit(Serial(i), move |txn| txn.update(&var, |v| v + 1));
    }
    spec.wait_idle();
    assert_eq!(*var.load(), 80);
    spec.shutdown();
}

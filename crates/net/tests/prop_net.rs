//! Property-based tests for the link substrate: FIFO order, replay
//! equivalence, ack/retention consistency, backoff arithmetic, and
//! credit-accounting invariants.

use proptest::prelude::*;
use streammine_net::{link, BackoffConfig, LinkConfig};

proptest! {
    #[test]
    fn delivery_is_fifo_under_jitter(
        count in 1usize..80,
        jitter in 0.0f64..0.95,
    ) {
        let cfg = LinkConfig {
            delay: std::time::Duration::from_micros(50),
            jitter,
            seed: 7,
            ..LinkConfig::instant()
        };
        let (tx, rx) = link::<usize>(cfg);
        for i in 0..count {
            tx.send(i).unwrap();
        }
        for i in 0..count {
            let (seq, v) = rx.recv().unwrap();
            prop_assert_eq!(seq as usize, i);
            prop_assert_eq!(v, i);
        }
    }

    #[test]
    fn replay_is_equivalent_to_original_suffix(
        count in 1u64..60,
        from_frac in 0.0f64..1.0,
    ) {
        let (tx, rx) = link::<u64>(LinkConfig::instant());
        for i in 0..count {
            tx.send(i).unwrap();
        }
        for _ in 0..count {
            rx.recv().unwrap();
        }
        let from = (count as f64 * from_frac) as u64;
        tx.replay_from(from);
        for i in from..count {
            let (seq, v) = rx.recv().unwrap();
            prop_assert_eq!(seq, i);
            prop_assert_eq!(v, i);
        }
    }

    #[test]
    fn ack_then_replay_only_has_unacked(
        count in 1u64..60,
        ack_frac in 0.0f64..1.0,
    ) {
        let (tx, rx) = link::<u64>(LinkConfig::instant());
        for i in 0..count {
            tx.send(i).unwrap();
        }
        let ack = (count as f64 * ack_frac) as u64;
        tx.ack_upto(ack);
        prop_assert_eq!(tx.retained_len() as u64, count - ack);
        tx.replay_from(0);
        let mut replayed = 0;
        for _ in 0..count {
            // original deliveries
            rx.recv().unwrap();
        }
        while let Ok(Some((seq, _))) = rx.try_recv() {
            prop_assert!(seq >= ack, "acked message {} replayed", seq);
            replayed += 1;
        }
        prop_assert_eq!(replayed, count - ack);
    }

    #[test]
    fn backoff_delay_never_overflows_and_stays_capped(
        base_us in 0u64..10_000_000,
        cap_us in 0u64..60_000_000,
        failures in 0u32..u32::MAX,
    ) {
        let cfg = BackoffConfig {
            base: std::time::Duration::from_micros(base_us),
            cap: std::time::Duration::from_micros(cap_us),
        };
        // Must not panic for any failure count (shift/multiply overflow)
        // and must never exceed the cap.
        let d = cfg.delay(failures);
        prop_assert!(d <= cfg.cap.max(std::time::Duration::ZERO) || failures == 0 && d.is_zero());
        if failures > 0 {
            prop_assert!(d <= cfg.cap);
        }
    }

    #[test]
    fn backoff_delay_is_monotone_up_to_the_cap(
        base_us in 1u64..1_000_000,
        cap_us in 1u64..120_000_000,
        failures in 1u32..64,
    ) {
        let cfg = BackoffConfig {
            base: std::time::Duration::from_micros(base_us),
            cap: std::time::Duration::from_micros(cap_us),
        };
        let prev = cfg.delay(failures);
        let next = cfg.delay(failures + 1);
        prop_assert!(next >= prev, "delay({}) = {prev:?} > delay({}) = {next:?}",
            failures, failures + 1);
    }

    #[test]
    fn credit_accounting_never_negative_or_leaked(
        capacity in 1usize..12,
        reserve in 1usize..6,
        ops in proptest::collection::vec(0u8..4, 1..120),
    ) {
        let cfg = LinkConfig::instant().with_capacity(capacity).with_replay_reserve(reserve);
        let (tx, rx) = link::<u64>(cfg);
        let mut next = 0u64;
        for op in ops {
            match op {
                // Live send: consumes a normal credit or saturates.
                0 => {
                    if tx.send(next).is_ok() {
                        next += 1;
                    }
                }
                // Consume one delivery: returns its credit.
                1 => { let _ = rx.try_recv(); }
                // Replay everything retained: draws only replay credits.
                2 => { tx.replay_from(0); }
                // Ack everything: trims retention (grant-by-ack).
                _ => { tx.ack_upto(next); }
            }
            // Invariant: both pools stay within [0, configured size] at
            // every step — no negative balances, no manufactured credits.
            let c = tx.credits_available();
            let r = tx.replay_credits_available();
            prop_assert!((0..=capacity as i64).contains(&c), "normal credits {c}");
            prop_assert!((0..=reserve as i64).contains(&r), "replay credits {r}");
        }
        // Draining every in-flight message must restore both pools in
        // full: credits can neither leak nor duplicate.
        while let Ok(Some(_)) = rx.try_recv() {}
        prop_assert_eq!(tx.credits_available(), capacity as i64);
        prop_assert_eq!(tx.replay_credits_available(), reserve as i64);
    }

    #[test]
    fn sever_heal_preserves_sequence_monotonicity(
        before in 1u64..20,
        during in 1u64..20,
        after in 1u64..20,
    ) {
        let (tx, rx) = link::<u64>(LinkConfig::instant());
        for i in 0..before {
            tx.send(i).unwrap();
        }
        tx.sever();
        for i in 0..during {
            prop_assert!(tx.send(i).is_err());
        }
        tx.heal();
        for i in 0..after {
            tx.send(i).unwrap();
        }
        let mut prev = None;
        for _ in 0..(before + after) {
            let (seq, _) = rx.recv().unwrap();
            if let Some(p) = prev {
                prop_assert!(seq > p);
            }
            prev = Some(seq);
        }
    }
}

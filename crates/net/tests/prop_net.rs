//! Property-based tests for the link substrate: FIFO order, replay
//! equivalence, ack/retention consistency.

use proptest::prelude::*;
use streammine_net::{link, LinkConfig};

proptest! {
    #[test]
    fn delivery_is_fifo_under_jitter(
        count in 1usize..80,
        jitter in 0.0f64..0.95,
    ) {
        let cfg = LinkConfig { delay: std::time::Duration::from_micros(50), jitter, seed: 7 };
        let (tx, rx) = link::<usize>(cfg);
        for i in 0..count {
            tx.send(i).unwrap();
        }
        for i in 0..count {
            let (seq, v) = rx.recv().unwrap();
            prop_assert_eq!(seq as usize, i);
            prop_assert_eq!(v, i);
        }
    }

    #[test]
    fn replay_is_equivalent_to_original_suffix(
        count in 1u64..60,
        from_frac in 0.0f64..1.0,
    ) {
        let (tx, rx) = link::<u64>(LinkConfig::instant());
        for i in 0..count {
            tx.send(i).unwrap();
        }
        for _ in 0..count {
            rx.recv().unwrap();
        }
        let from = (count as f64 * from_frac) as u64;
        tx.replay_from(from);
        for i in from..count {
            let (seq, v) = rx.recv().unwrap();
            prop_assert_eq!(seq, i);
            prop_assert_eq!(v, i);
        }
    }

    #[test]
    fn ack_then_replay_only_has_unacked(
        count in 1u64..60,
        ack_frac in 0.0f64..1.0,
    ) {
        let (tx, rx) = link::<u64>(LinkConfig::instant());
        for i in 0..count {
            tx.send(i).unwrap();
        }
        let ack = (count as f64 * ack_frac) as u64;
        tx.ack_upto(ack);
        prop_assert_eq!(tx.retained_len() as u64, count - ack);
        tx.replay_from(0);
        let mut replayed = 0;
        for _ in 0..count {
            // original deliveries
            rx.recv().unwrap();
        }
        while let Ok(Some((seq, _))) = rx.try_recv() {
            prop_assert!(seq >= ack, "acked message {} replayed", seq);
            replayed += 1;
        }
        prop_assert_eq!(replayed, count - ack);
    }

    #[test]
    fn sever_heal_preserves_sequence_monotonicity(
        before in 1u64..20,
        during in 1u64..20,
        after in 1u64..20,
    ) {
        let (tx, rx) = link::<u64>(LinkConfig::instant());
        for i in 0..before {
            tx.send(i).unwrap();
        }
        tx.sever();
        for i in 0..during {
            prop_assert!(tx.send(i).is_err());
        }
        tx.heal();
        for i in 0..after {
            tx.send(i).unwrap();
        }
        let mut prev = None;
        for _ in 0..(before + after) {
            let (seq, _) = rx.recv().unwrap();
            if let Some(p) = prev {
                prop_assert!(seq > p);
            }
            prev = Some(seq);
        }
    }
}

//! Real-socket [`Transport`] backend.
//!
//! Wire format, per frame:
//!
//! ```text
//! [u32 len (LE)] [u32 crc32 (LE, over payload)] [payload: len bytes]
//! ```
//!
//! Properties the engine's recovery protocol relies on, and how the
//! backend provides them:
//!
//! * **Frame integrity** — every payload is covered by a CRC32 (same
//!   polynomial and framing discipline as the stable-storage records in
//!   `streammine-common::crc32`). A mismatch surfaces
//!   [`FrameError::Crc`]; the receiver tears the connection rather than
//!   act on a corrupt frame.
//! * **Torn-frame truncation** — a stream that ends (peer death, RST)
//!   mid-frame yields [`FrameError::Torn`]; the partial bytes are
//!   discarded, mirroring how the decision log truncates a torn tail.
//!   Retransmission comes from the sender's retained output buffer on
//!   reconnect, not from the transport.
//! * **Read/write timeouts** — both directions carry deadlines so a
//!   one-way partition (peer reads nothing, kernel buffers fill) turns
//!   into a [`FrameError::Timeout`] on write, and a silent peer turns
//!   into one on read. Mid-frame read timeouts are *torn*, not
//!   retryable: resuming a half-read frame after an unbounded stall
//!   would hide partitions from the failure detector.
//! * **No head-of-line surprises** — `TCP_NODELAY` is set; frames are
//!   written with a single `write_all` of header + payload.
//!
//! Reconnect policy deliberately lives one layer up (the edge bridges in
//! `streammine-core::dist`), because only that layer knows whether a
//! peer is expected to come back and at which address a restarted
//! incarnation listens.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use streammine_common::crc32;

use crate::transport::{
    FrameConn, FrameError, FrameListener, FrameRx, FrameTx, Transport, MAX_FRAME,
};

/// Header bytes preceding every payload: `u32` length + `u32` CRC.
pub const FRAME_HEADER: usize = 8;

/// TCP [`Transport`] with per-connection deadlines.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    /// Deadline for reading one frame (applied per `read` syscall).
    /// `None` blocks forever — only sensible in tests.
    pub read_timeout: Option<Duration>,
    /// Deadline for writing one frame.
    pub write_timeout: Option<Duration>,
    /// Deadline for `dial` to establish a connection.
    pub connect_timeout: Duration,
}

impl Default for TcpTransport {
    fn default() -> Self {
        TcpTransport {
            read_timeout: Some(Duration::from_millis(500)),
            write_timeout: Some(Duration::from_millis(500)),
            connect_timeout: Duration::from_millis(500),
        }
    }
}

impl TcpTransport {
    /// The default transport: 500 ms read/write/connect deadlines —
    /// generous against scheduling noise, small enough that a partition
    /// is detected well inside a heartbeat lease.
    pub fn new() -> TcpTransport {
        TcpTransport::default()
    }

    /// Overrides the read deadline.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Duration) -> TcpTransport {
        self.read_timeout = Some(timeout);
        self
    }

    /// Overrides the write deadline.
    #[must_use]
    pub fn with_write_timeout(mut self, timeout: Duration) -> TcpTransport {
        self.write_timeout = Some(timeout);
        self
    }

    fn configure(&self, stream: &TcpStream) -> Result<(), FrameError> {
        stream.set_nodelay(true).map_err(io_err)?;
        stream.set_read_timeout(self.read_timeout).map_err(io_err)?;
        stream.set_write_timeout(self.write_timeout).map_err(io_err)?;
        Ok(())
    }
}

fn io_err(e: std::io::Error) -> FrameError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => FrameError::Timeout,
        ErrorKind::BrokenPipe
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::UnexpectedEof
        | ErrorKind::NotConnected => FrameError::Closed,
        _ => FrameError::Io(e.to_string()),
    }
}

fn resolve(addr: &str) -> Result<SocketAddr, FrameError> {
    addr.to_socket_addrs()
        .map_err(|e| FrameError::Addr(format!("{addr}: {e}")))?
        .next()
        .ok_or_else(|| FrameError::Addr(format!("{addr}: no addresses")))
}

impl Transport for TcpTransport {
    fn bind(&self, addr: &str) -> Result<Box<dyn FrameListener>, FrameError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| FrameError::Addr(format!("{addr}: {e}")))?;
        Ok(Box::new(TcpFrameListener { listener, transport: self.clone() }))
    }

    fn dial(&self, addr: &str) -> Result<Box<dyn FrameConn>, FrameError> {
        let sockaddr = resolve(addr)?;
        let stream = TcpStream::connect_timeout(&sockaddr, self.connect_timeout).map_err(|e| {
            match e.kind() {
                ErrorKind::TimedOut | ErrorKind::WouldBlock => FrameError::Timeout,
                _ => FrameError::Addr(format!("{addr}: {e}")),
            }
        })?;
        self.configure(&stream)?;
        Ok(Box::new(TcpFrameConn { stream, peer: addr.to_string() }))
    }
}

struct TcpFrameListener {
    listener: TcpListener,
    transport: TcpTransport,
}

impl FrameListener for TcpFrameListener {
    fn accept(&self) -> Result<Box<dyn FrameConn>, FrameError> {
        let (stream, peer) = self.listener.accept().map_err(io_err)?;
        self.transport.configure(&stream)?;
        Ok(Box::new(TcpFrameConn { stream, peer: peer.to_string() }))
    }

    fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| String::from("<unbound>"))
    }
}

/// Writes one `[len][crc][payload]` frame with a single `write_all`.
fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME {
        return Err(FrameError::TooLarge(payload.len() as u64));
    }
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32::checksum(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    stream.write_all(&buf).map_err(io_err)
}

/// Reads exactly `buf.len()` bytes, classifying the three ways a stream
/// can come up short: clean EOF before the first byte (`Closed` iff
/// `at_boundary`), EOF or stall after some bytes (`Torn` — the partial
/// frame is discarded), timeout before the first byte (`Timeout`).
fn read_exact_classified(
    stream: &mut TcpStream,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Torn { needed: buf.len() - filled, got: filled })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return if at_boundary && filled == 0 {
                    Err(FrameError::Timeout)
                } else {
                    // A stall mid-frame is indistinguishable from a torn
                    // peer for our purposes: truncate, don't resume.
                    Err(FrameError::Torn { needed: buf.len() - filled, got: filled })
                };
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    Ok(())
}

/// Reads one complete frame and validates its checksum.
fn read_frame(stream: &mut TcpStream) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; FRAME_HEADER];
    read_exact_classified(stream, &mut header, true)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let stored = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len as u64));
    }
    let mut payload = vec![0u8; len];
    read_exact_classified(stream, &mut payload, false)?;
    let computed = crc32::checksum(&payload);
    if computed != stored {
        return Err(FrameError::Crc { stored, computed });
    }
    Ok(payload)
}

struct TcpFrameConn {
    stream: TcpStream,
    peer: String,
}

impl FrameConn for TcpFrameConn {
    fn send(&mut self, payload: &[u8]) -> Result<(), FrameError> {
        write_frame(&mut self.stream, payload)
    }

    fn recv(&mut self) -> Result<Vec<u8>, FrameError> {
        read_frame(&mut self.stream)
    }

    fn split(self: Box<Self>) -> (Box<dyn FrameTx>, Box<dyn FrameRx>) {
        // try_clone shares one socket between the halves; failure leaves
        // the rx half permanently closed, which the owning bridge treats
        // like any dead connection (tear down and redial).
        match self.stream.try_clone() {
            Ok(clone) => (
                Box::new(TcpTxHalf { stream: self.stream }),
                Box::new(TcpRxHalf { stream: Some(clone) }),
            ),
            Err(_) => {
                (Box::new(TcpTxHalf { stream: self.stream }), Box::new(TcpRxHalf { stream: None }))
            }
        }
    }

    fn peer_addr(&self) -> String {
        self.peer.clone()
    }
}

struct TcpTxHalf {
    stream: TcpStream,
}

impl FrameTx for TcpTxHalf {
    fn send(&mut self, payload: &[u8]) -> Result<(), FrameError> {
        write_frame(&mut self.stream, payload)
    }
}

struct TcpRxHalf {
    stream: Option<TcpStream>,
}

impl FrameRx for TcpRxHalf {
    fn recv(&mut self) -> Result<Vec<u8>, FrameError> {
        match self.stream.as_mut() {
            Some(stream) => read_frame(stream),
            None => Err(FrameError::Closed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(t: &TcpTransport) -> (Box<dyn FrameConn>, Box<dyn FrameConn>) {
        let listener = t.bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let dialed = t.dial(&addr).unwrap();
        let accepted = listener.accept().unwrap();
        (dialed, accepted)
    }

    #[test]
    fn frames_roundtrip_both_ways() {
        let t = TcpTransport::new();
        let (mut a, mut b) = pair(&t);
        a.send(b"hello").unwrap();
        a.send(&[]).unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        assert_eq!(b.recv().unwrap(), b"");
        b.send(&[7u8; 1000]).unwrap();
        assert_eq!(a.recv().unwrap(), vec![7u8; 1000]);
    }

    #[test]
    fn clean_close_at_boundary_is_closed() {
        let t = TcpTransport::new();
        let (a, mut b) = pair(&t);
        drop(a);
        assert_eq!(b.recv().unwrap_err(), FrameError::Closed);
    }

    #[test]
    fn idle_read_times_out_without_tearing() {
        let t = TcpTransport::new().with_read_timeout(Duration::from_millis(20));
        let (_a, mut b) = pair(&t);
        let err = b.recv().unwrap_err();
        assert_eq!(err, FrameError::Timeout);
        assert!(!err.is_fatal());
    }

    #[test]
    fn torn_mid_frame_write_truncates() {
        // Write a header promising 100 bytes, send only 3, then close:
        // the reader must report Torn, not hang or return garbage.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = TcpTransport::new();
        let writer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut partial = Vec::new();
            partial.extend_from_slice(&100u32.to_le_bytes());
            partial.extend_from_slice(&0u32.to_le_bytes());
            partial.extend_from_slice(b"abc");
            s.write_all(&partial).unwrap();
            // Drop closes the socket mid-frame.
        });
        let mut conn = t.dial(&addr.to_string()).unwrap();
        match conn.recv().unwrap_err() {
            FrameError::Torn { needed, got } => {
                assert_eq!(got, 3);
                assert_eq!(needed, 97);
            }
            other => panic!("expected torn frame, got {other:?}"),
        }
        writer.join().unwrap();
    }

    #[test]
    fn torn_mid_header_is_torn_not_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = TcpTransport::new();
        let writer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            s.write_all(&[1, 2, 3]).unwrap(); // 3 of 8 header bytes
        });
        let mut conn = t.dial(&addr.to_string()).unwrap();
        assert!(matches!(conn.recv().unwrap_err(), FrameError::Torn { got: 3, .. }));
        writer.join().unwrap();
    }

    #[test]
    fn corrupt_crc_is_detected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = TcpTransport::new();
        let writer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let payload = b"data";
            let mut frame = Vec::new();
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&(crc32::checksum(payload) ^ 0xFF).to_le_bytes());
            frame.extend_from_slice(payload);
            s.write_all(&frame).unwrap();
        });
        let mut conn = t.dial(&addr.to_string()).unwrap();
        assert!(matches!(conn.recv().unwrap_err(), FrameError::Crc { .. }));
        writer.join().unwrap();
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = TcpTransport::new();
        let writer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut frame = Vec::new();
            frame.extend_from_slice(&u32::MAX.to_le_bytes());
            frame.extend_from_slice(&0u32.to_le_bytes());
            s.write_all(&frame).unwrap();
        });
        let mut conn = t.dial(&addr.to_string()).unwrap();
        assert!(matches!(conn.recv().unwrap_err(), FrameError::TooLarge(_)));
        writer.join().unwrap();
    }

    #[test]
    fn split_halves_carry_full_duplex_traffic() {
        let t = TcpTransport::new();
        let (a, b) = pair(&t);
        let (mut a_tx, mut a_rx) = a.split();
        let (mut b_tx, mut b_rx) = b.split();
        let fwd = std::thread::spawn(move || {
            for i in 0..50u32 {
                a_tx.send(&i.to_le_bytes()).unwrap();
            }
        });
        let back = std::thread::spawn(move || {
            for i in 0..50u32 {
                b_tx.send(&(i * 2).to_le_bytes()).unwrap();
            }
        });
        for i in 0..50u32 {
            assert_eq!(b_rx.recv().unwrap(), i.to_le_bytes());
            assert_eq!(a_rx.recv().unwrap(), (i * 2).to_le_bytes());
        }
        fwd.join().unwrap();
        back.join().unwrap();
    }

    #[test]
    fn dial_unreachable_is_an_error_not_a_hang() {
        let t = TcpTransport { connect_timeout: Duration::from_millis(100), ..TcpTransport::new() };
        // A listener bound then dropped: the port is (very likely) closed.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        assert!(t.dial(&addr).is_err());
        assert!(matches!(t.dial("definitely-not-a-host-name:1"), Err(FrameError::Addr(_))));
    }
}

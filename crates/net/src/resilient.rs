//! A reconnecting wrapper around [`LinkSender`].
//!
//! A raw [`LinkSender::send`] fails while the link is severed, and a failed
//! send is *not* retained for replay — without care the engine would
//! silently lose data on a link flap. [`ResilientSender`] degrades a send
//! failure into buffering: failed messages queue in FIFO order and are
//! retransmitted once the link heals, with capped exponential backoff
//! between reconnect attempts so a dead peer is not hammered.
//!
//! All clones share one pending queue, so ordering is preserved even when
//! several threads send through the same logical edge.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use streammine_obs::{Counter, Labels, Registry};

use crate::{LinkError, LinkSender};

/// Per-edge transport counters, registered under `(op, edge)` labels.
///
/// `sent` counts messages delivered to the link (first transmissions and
/// retransmissions alike), `queued` counts sends degraded into buffering
/// because the link was down, and `retransmits` counts queued messages
/// later drained onto a healed link.
#[derive(Clone, Debug)]
pub struct EdgeMetrics {
    /// Messages delivered to the underlying link.
    pub sent: Counter,
    /// Sends buffered because the link was severed.
    pub queued: Counter,
    /// Buffered messages retransmitted after the link healed.
    pub retransmits: Counter,
}

impl EdgeMetrics {
    /// Counters not attached to any registry (the default).
    pub fn detached() -> EdgeMetrics {
        EdgeMetrics {
            sent: Counter::detached(),
            queued: Counter::detached(),
            retransmits: Counter::detached(),
        }
    }

    /// Registers the counters as `edge.sent` / `edge.queued` /
    /// `edge.retransmits` labeled with the owning operator and edge index.
    pub fn registered(registry: &Registry, op: u32, edge: u32) -> EdgeMetrics {
        let labels = Labels::op_port(op, edge);
        EdgeMetrics {
            sent: registry.counter("edge.sent", labels),
            queued: registry.counter("edge.queued", labels),
            retransmits: registry.counter("edge.retransmits", labels),
        }
    }
}

impl Default for EdgeMetrics {
    fn default() -> Self {
        EdgeMetrics::detached()
    }
}

/// Reconnect backoff policy: `base * 2^(failures-1)`, capped at `cap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Delay after the first failed attempt.
    pub base: Duration,
    /// Upper bound on the delay between attempts.
    pub cap: Duration,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig { base: Duration::from_millis(1), cap: Duration::from_millis(100) }
    }
}

impl BackoffConfig {
    /// Delay before the next attempt after `failures` consecutive failures.
    pub fn delay(&self, failures: u32) -> Duration {
        if failures == 0 {
            return Duration::ZERO;
        }
        let shift = (failures - 1).min(16);
        self.base.saturating_mul(1u32 << shift).min(self.cap)
    }
}

/// Outcome of a [`ResilientSender::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Delivered to the link; carries the assigned link sequence number.
    Sent(u64),
    /// The link is down; the message is queued for retransmission.
    Queued,
}

struct RetryState<T> {
    pending: VecDeque<T>,
    failures: u32,
    next_attempt: Instant,
    metrics: EdgeMetrics,
}

/// A [`LinkSender`] that buffers instead of failing while the link is down.
pub struct ResilientSender<T> {
    inner: LinkSender<T>,
    backoff: BackoffConfig,
    state: Arc<Mutex<RetryState<T>>>,
}

impl<T> Clone for ResilientSender<T> {
    fn clone(&self) -> Self {
        ResilientSender {
            inner: self.inner.clone(),
            backoff: self.backoff.clone(),
            state: self.state.clone(),
        }
    }
}

impl<T> fmt::Debug for ResilientSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("ResilientSender")
            .field("inner", &self.inner)
            .field("pending", &state.pending.len())
            .field("failures", &state.failures)
            .finish()
    }
}

impl<T: Clone + Send + 'static> ResilientSender<T> {
    /// Wraps a raw sender with the default backoff policy.
    pub fn new(inner: LinkSender<T>) -> Self {
        Self::with_backoff(inner, BackoffConfig::default())
    }

    /// Wraps a raw sender with an explicit backoff policy.
    pub fn with_backoff(inner: LinkSender<T>, backoff: BackoffConfig) -> Self {
        ResilientSender {
            inner,
            backoff,
            state: Arc::new(Mutex::new(RetryState {
                pending: VecDeque::new(),
                failures: 0,
                next_attempt: Instant::now(),
                metrics: EdgeMetrics::detached(),
            })),
        }
    }

    /// Attaches registered transport counters; shared by all clones.
    pub fn set_metrics(&self, metrics: EdgeMetrics) {
        self.state.lock().metrics = metrics;
    }

    /// Sends or queues a message; never fails and never reorders.
    ///
    /// If older messages are already queued they are flushed first so FIFO
    /// order is preserved; if the link is still down the message joins the
    /// queue.
    pub fn send(&self, msg: T) -> SendOutcome {
        let mut state = self.state.lock();
        if !state.pending.is_empty() {
            Self::drain(&self.inner, &self.backoff, &mut state);
            if !state.pending.is_empty() {
                state.pending.push_back(msg);
                state.metrics.queued.incr();
                return SendOutcome::Queued;
            }
        }
        match self.inner.send(msg.clone()) {
            Ok(seq) => {
                state.failures = 0;
                state.metrics.sent.incr();
                SendOutcome::Sent(seq)
            }
            Err(LinkError::Disconnected | LinkError::Timeout) => {
                state.pending.push_back(msg);
                state.failures += 1;
                state.metrics.queued.incr();
                state.next_attempt = Instant::now() + self.backoff.delay(state.failures);
                SendOutcome::Queued
            }
        }
    }

    /// Attempts to retransmit queued messages; returns how many remain.
    ///
    /// Respects the backoff window: a call before the next scheduled
    /// attempt is a cheap no-op.
    pub fn flush(&self) -> usize {
        let mut state = self.state.lock();
        if state.pending.is_empty() {
            return 0;
        }
        if Instant::now() < state.next_attempt {
            return state.pending.len();
        }
        Self::drain(&self.inner, &self.backoff, &mut state);
        state.pending.len()
    }

    fn drain(inner: &LinkSender<T>, backoff: &BackoffConfig, state: &mut RetryState<T>) {
        while let Some(front) = state.pending.front() {
            match inner.send(front.clone()) {
                Ok(_) => {
                    state.pending.pop_front();
                    state.failures = 0;
                    state.metrics.sent.incr();
                    state.metrics.retransmits.incr();
                }
                Err(_) => {
                    state.failures += 1;
                    state.next_attempt = Instant::now() + backoff.delay(state.failures);
                    return;
                }
            }
        }
    }

    /// Messages queued awaiting reconnection.
    pub fn pending_len(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// Consecutive failed attempts since the last successful send.
    pub fn failures(&self) -> u32 {
        self.state.lock().failures
    }

    /// Re-delivers retained messages with link sequence `>= from` (replay
    /// bypasses the severed flag, like a fresh TCP connection).
    pub fn replay_from(&self, from: u64) {
        self.inner.replay_from(from);
    }

    /// Drops retained messages below `upto` (downstream acknowledged them).
    pub fn ack_upto(&self, upto: u64) {
        self.inner.ack_upto(upto);
    }

    /// Messages retained by the underlying link for replay.
    pub fn retained_len(&self) -> usize {
        self.inner.retained_len()
    }

    /// Total messages successfully sent on the underlying link.
    pub fn sent(&self) -> u64 {
        self.inner.sent()
    }

    /// Severs the underlying link (failure injection).
    pub fn sever(&self) {
        self.inner.sever();
    }

    /// Heals the underlying link; queued messages go out on the next
    /// [`ResilientSender::send`] or [`ResilientSender::flush`].
    pub fn heal(&self) {
        self.inner.heal();
    }

    /// Whether the underlying link is severed.
    pub fn is_severed(&self) -> bool {
        self.inner.is_severed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{link, LinkConfig};

    #[test]
    fn concurrent_edge_registration_converges_on_shared_cells() {
        use std::sync::Arc;
        let registry = Arc::new(Registry::new());
        // Every thread registers the same (op, edge) cells and bumps them:
        // registration is idempotent, so the totals must all land on one
        // counter per name regardless of interleaving.
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let m = EdgeMetrics::registered(&registry, 1, 2);
                        m.sent.incr();
                        m.queued.incr();
                        m.retransmits.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = registry.snapshot();
        for name in ["edge.sent", "edge.queued", "edge.retransmits"] {
            assert_eq!(snap.counter(name, Labels::op_port(1, 2)), Some(800), "{name}");
        }
        assert_eq!(snap.samples.len(), 3, "no duplicate cells from racing registrations");
    }

    #[test]
    fn severed_sends_queue_and_flush_in_order() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        let tx = ResilientSender::with_backoff(
            tx,
            BackoffConfig { base: Duration::ZERO, cap: Duration::ZERO },
        );
        assert_eq!(tx.send(1), SendOutcome::Sent(0));
        tx.sever();
        assert_eq!(tx.send(2), SendOutcome::Queued);
        assert_eq!(tx.send(3), SendOutcome::Queued);
        assert_eq!(tx.pending_len(), 2);
        tx.heal();
        // A fresh send first drains the queue, preserving FIFO order.
        assert_eq!(tx.send(4), SendOutcome::Sent(3));
        assert_eq!(tx.pending_len(), 0);
        let got: Vec<u8> = (0..4).map(|_| rx.recv().unwrap().1).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn flush_retransmits_after_heal() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        let tx = ResilientSender::with_backoff(
            tx,
            BackoffConfig { base: Duration::ZERO, cap: Duration::ZERO },
        );
        tx.sever();
        tx.send(7);
        assert_eq!(tx.flush(), 1, "still severed: message stays queued");
        tx.heal();
        assert_eq!(tx.flush(), 0);
        assert_eq!(rx.recv().unwrap().1, 7);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = BackoffConfig { base: Duration::from_millis(2), cap: Duration::from_millis(10) };
        assert_eq!(cfg.delay(0), Duration::ZERO);
        assert_eq!(cfg.delay(1), Duration::from_millis(2));
        assert_eq!(cfg.delay(2), Duration::from_millis(4));
        assert_eq!(cfg.delay(3), Duration::from_millis(8));
        assert_eq!(cfg.delay(4), Duration::from_millis(10));
        assert_eq!(cfg.delay(60), Duration::from_millis(10));
    }

    #[test]
    fn backoff_window_defers_retransmission() {
        let (tx, _rx) = link::<u8>(LinkConfig::instant());
        let tx = ResilientSender::with_backoff(
            tx,
            BackoffConfig { base: Duration::from_secs(60), cap: Duration::from_secs(60) },
        );
        tx.sever();
        tx.send(1);
        tx.heal();
        // Inside the backoff window the flush is a no-op even though the
        // link is healthy again.
        assert_eq!(tx.flush(), 1);
        assert_eq!(tx.failures(), 1);
    }

    #[test]
    fn metrics_count_sends_queues_and_retransmits() {
        let registry = Registry::new();
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        let tx = ResilientSender::with_backoff(
            tx,
            BackoffConfig { base: Duration::ZERO, cap: Duration::ZERO },
        );
        tx.set_metrics(EdgeMetrics::registered(&registry, 2, 0));
        let labels = Labels::op_port(2, 0);
        tx.send(1);
        tx.sever();
        tx.send(2);
        tx.send(3);
        assert_eq!(registry.counter_value("edge.sent", labels), Some(1));
        assert_eq!(registry.counter_value("edge.queued", labels), Some(2));
        tx.heal();
        assert_eq!(tx.flush(), 0);
        assert_eq!(registry.counter_value("edge.retransmits", labels), Some(2));
        assert_eq!(registry.counter_value("edge.sent", labels), Some(3));
        drop(rx);
    }

    #[test]
    fn clones_share_the_pending_queue() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        let a = ResilientSender::with_backoff(
            tx,
            BackoffConfig { base: Duration::ZERO, cap: Duration::ZERO },
        );
        let b = a.clone();
        a.sever();
        a.send(1);
        b.send(2);
        assert_eq!(a.pending_len(), 2);
        b.heal();
        assert_eq!(b.flush(), 0);
        assert_eq!(rx.recv().unwrap().1, 1);
        assert_eq!(rx.recv().unwrap().1, 2);
    }
}

//! A reconnecting wrapper around [`LinkSender`].
//!
//! A raw [`LinkSender::send`] fails while the link is severed, and a failed
//! send is *not* retained for replay — without care the engine would
//! silently lose data on a link flap. [`ResilientSender`] degrades a send
//! failure into buffering: failed messages queue in FIFO order and are
//! retransmitted once the link heals, with capped exponential backoff
//! between reconnect attempts so a dead peer is not hammered.
//!
//! All clones share one pending queue, so ordering is preserved even when
//! several threads send through the same logical edge.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use streammine_obs::{Counter, Gauge, Labels, Registry};

use crate::{LinkError, LinkSender};

/// Per-edge transport metrics, registered under `(op, edge)` labels.
///
/// `sent` counts messages delivered to the link (first transmissions and
/// retransmissions alike), `queued` counts sends degraded into buffering
/// because the link was down, `retransmits` counts queued messages later
/// drained onto a healed link, and `saturated` counts sends that hit the
/// edge's saturation caps. The gauges track live queue depths: `pending`
/// (retry queue), `pending_hwm` (its high-water mark), `retained`
/// (unacked replay buffer), and `credits` (link window remaining).
#[derive(Clone, Debug)]
pub struct EdgeMetrics {
    /// Messages delivered to the underlying link.
    pub sent: Counter,
    /// Sends buffered because the link was severed.
    pub queued: Counter,
    /// Buffered messages retransmitted after the link healed.
    pub retransmits: Counter,
    /// Sends that found the edge saturated (over its pending/retained cap).
    pub saturated: Counter,
    /// Current retry-queue depth.
    pub pending: Gauge,
    /// High-water mark of the retry queue.
    pub pending_hwm: Gauge,
    /// Messages retained by the link awaiting acknowledgment.
    pub retained: Gauge,
    /// Normal-class link credits remaining.
    pub credits: Gauge,
}

impl EdgeMetrics {
    /// Metrics not attached to any registry (the default).
    pub fn detached() -> EdgeMetrics {
        EdgeMetrics {
            sent: Counter::detached(),
            queued: Counter::detached(),
            retransmits: Counter::detached(),
            saturated: Counter::detached(),
            pending: Gauge::detached(),
            pending_hwm: Gauge::detached(),
            retained: Gauge::detached(),
            credits: Gauge::detached(),
        }
    }

    /// Registers the metrics as `edge.sent` / `edge.queued` /
    /// `edge.retransmits` / `edge.saturated` / `edge.pending` /
    /// `edge.pending_hwm` / `edge.retained` / `edge.credits` labeled with
    /// the owning operator and edge index.
    pub fn registered(registry: &Registry, op: u32, edge: u32) -> EdgeMetrics {
        let labels = Labels::op_port(op, edge);
        EdgeMetrics {
            sent: registry.counter("edge.sent", labels),
            queued: registry.counter("edge.queued", labels),
            retransmits: registry.counter("edge.retransmits", labels),
            saturated: registry.counter("edge.saturated", labels),
            pending: registry.gauge("edge.pending", labels),
            pending_hwm: registry.gauge("edge.pending_hwm", labels),
            retained: registry.gauge("edge.retained", labels),
            credits: registry.gauge("edge.credits", labels),
        }
    }
}

impl Default for EdgeMetrics {
    fn default() -> Self {
        EdgeMetrics::detached()
    }
}

/// Reconnect backoff policy: `base * 2^(failures-1)`, capped at `cap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Delay after the first failed attempt.
    pub base: Duration,
    /// Upper bound on the delay between attempts.
    pub cap: Duration,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig { base: Duration::from_millis(1), cap: Duration::from_millis(100) }
    }
}

impl BackoffConfig {
    /// Delay before the next attempt after `failures` consecutive failures.
    pub fn delay(&self, failures: u32) -> Duration {
        if failures == 0 {
            return Duration::ZERO;
        }
        let shift = (failures - 1).min(16);
        self.base.saturating_mul(1u32 << shift).min(self.cap)
    }
}

/// Saturation caps on a [`ResilientSender`]'s buffers.
///
/// Both caps are *soft*: a send over the cap is still accepted (dropping
/// it would lose data and break determinism) but reports
/// [`SendOutcome::Saturated`] so the producer stops generating new work.
/// The hard memory bound is therefore `pending_cap` plus the producer's
/// bounded in-flight overshoot (open transactions + hold queue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SenderLimits {
    /// Retry-queue depth at which the edge reports saturation.
    pub pending_cap: usize,
    /// Retained (unacked) buffer depth at which the edge reports
    /// saturation. Defaults to `usize::MAX` (off): operators that never
    /// checkpoint never ack, so a finite default would wedge them.
    pub retained_cap: usize,
}

impl Default for SenderLimits {
    fn default() -> Self {
        SenderLimits { pending_cap: 1024, retained_cap: usize::MAX }
    }
}

/// Outcome of a [`ResilientSender::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Delivered to the link; carries the assigned link sequence number.
    Sent(u64),
    /// The link is down; the message is queued for retransmission.
    Queued,
    /// The message was accepted (queued — never dropped) but the edge is
    /// saturated: the link window or a [`SenderLimits`] cap is exhausted.
    /// The producer must stop generating output until the edge drains.
    Saturated,
}

struct RetryState<T> {
    pending: VecDeque<T>,
    failures: u32,
    next_attempt: Instant,
    metrics: EdgeMetrics,
    pending_hwm: usize,
}

/// A [`LinkSender`] that buffers instead of failing while the link is down.
pub struct ResilientSender<T> {
    inner: LinkSender<T>,
    backoff: BackoffConfig,
    limits: SenderLimits,
    state: Arc<Mutex<RetryState<T>>>,
}

impl<T> Clone for ResilientSender<T> {
    fn clone(&self) -> Self {
        ResilientSender {
            inner: self.inner.clone(),
            backoff: self.backoff.clone(),
            limits: self.limits.clone(),
            state: self.state.clone(),
        }
    }
}

impl<T> fmt::Debug for ResilientSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("ResilientSender")
            .field("inner", &self.inner)
            .field("pending", &state.pending.len())
            .field("failures", &state.failures)
            .finish()
    }
}

impl<T: Clone + Send + 'static> ResilientSender<T> {
    /// Wraps a raw sender with the default backoff policy and limits.
    pub fn new(inner: LinkSender<T>) -> Self {
        Self::with_backoff(inner, BackoffConfig::default())
    }

    /// Wraps a raw sender with an explicit backoff policy.
    pub fn with_backoff(inner: LinkSender<T>, backoff: BackoffConfig) -> Self {
        ResilientSender {
            inner,
            backoff,
            limits: SenderLimits::default(),
            state: Arc::new(Mutex::new(RetryState {
                pending: VecDeque::new(),
                failures: 0,
                next_attempt: Instant::now(),
                metrics: EdgeMetrics::detached(),
                pending_hwm: 0,
            })),
        }
    }

    /// Overrides the saturation caps (applies to this handle and clones
    /// made from it afterwards).
    #[must_use]
    pub fn with_limits(mut self, limits: SenderLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Attaches registered transport counters; shared by all clones.
    pub fn set_metrics(&self, metrics: EdgeMetrics) {
        self.state.lock().metrics = metrics;
    }

    /// Sends or queues a message; never fails, never drops, never reorders.
    ///
    /// If older messages are already queued they are flushed first so FIFO
    /// order is preserved; if the link is still down (or its credit window
    /// exhausted) the message joins the queue. [`SendOutcome::Saturated`]
    /// tells the producer to stop generating output — the message itself
    /// is still accepted.
    pub fn send(&self, msg: T) -> SendOutcome {
        let mut state = self.state.lock();
        if !state.pending.is_empty() {
            Self::drain(&self.inner, &self.backoff, &mut state);
            if !state.pending.is_empty() {
                state.pending.push_back(msg);
                state.metrics.queued.incr();
                let outcome = self.queued_outcome(&mut state);
                self.update_gauges(&mut state);
                return outcome;
            }
        }
        let outcome = match self.inner.send(msg.clone()) {
            Ok(seq) => {
                state.failures = 0;
                state.metrics.sent.incr();
                if self.over_caps(&state) {
                    state.metrics.saturated.incr();
                    SendOutcome::Saturated
                } else {
                    SendOutcome::Sent(seq)
                }
            }
            Err(LinkError::Saturated) => {
                // Backpressure, not a broken link: queue without counting a
                // failure so the next flush retries immediately — the
                // consumer draining (not time passing) is what frees space.
                state.pending.push_back(msg);
                state.metrics.queued.incr();
                state.next_attempt = Instant::now();
                state.metrics.saturated.incr();
                SendOutcome::Saturated
            }
            Err(LinkError::Disconnected | LinkError::Timeout) => {
                state.pending.push_back(msg);
                state.failures += 1;
                state.metrics.queued.incr();
                state.next_attempt = Instant::now() + self.backoff.delay(state.failures);
                self.queued_outcome(&mut state)
            }
        };
        self.update_gauges(&mut state);
        outcome
    }

    fn queued_outcome(&self, state: &mut RetryState<T>) -> SendOutcome {
        if self.over_caps(state) {
            state.metrics.saturated.incr();
            SendOutcome::Saturated
        } else {
            SendOutcome::Queued
        }
    }

    fn over_caps(&self, state: &RetryState<T>) -> bool {
        state.pending.len() >= self.limits.pending_cap
            || self.inner.retained_len() >= self.limits.retained_cap
    }

    fn update_gauges(&self, state: &mut RetryState<T>) {
        let pending = state.pending.len();
        state.metrics.pending.set(pending as i64);
        if pending > state.pending_hwm {
            state.pending_hwm = pending;
            state.metrics.pending_hwm.set(pending as i64);
        }
        state.metrics.retained.set(self.inner.retained_len() as i64);
        state.metrics.credits.set(self.inner.credits_available());
    }

    /// Attempts to retransmit queued messages; returns how many remain.
    ///
    /// Respects the backoff window: a call before the next scheduled
    /// attempt is a cheap no-op.
    pub fn flush(&self) -> usize {
        let mut state = self.state.lock();
        if state.pending.is_empty() {
            self.update_gauges(&mut state);
            return 0;
        }
        if Instant::now() < state.next_attempt {
            return state.pending.len();
        }
        Self::drain(&self.inner, &self.backoff, &mut state);
        self.update_gauges(&mut state);
        state.pending.len()
    }

    fn drain(inner: &LinkSender<T>, backoff: &BackoffConfig, state: &mut RetryState<T>) {
        while let Some(front) = state.pending.front() {
            match inner.send(front.clone()) {
                Ok(_) => {
                    state.pending.pop_front();
                    state.failures = 0;
                    state.metrics.sent.incr();
                    state.metrics.retransmits.incr();
                }
                Err(LinkError::Saturated) => {
                    // Not a failure; retry as soon as the consumer drains.
                    state.next_attempt = Instant::now();
                    return;
                }
                Err(_) => {
                    state.failures += 1;
                    state.next_attempt = Instant::now() + backoff.delay(state.failures);
                    return;
                }
            }
        }
    }

    /// Messages queued awaiting reconnection.
    pub fn pending_len(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// Whether the edge is over a saturation cap (retry queue at
    /// `pending_cap`, or retained buffer at `retained_cap`). Producers
    /// poll this to decide whether to stall output generation.
    pub fn is_saturated(&self) -> bool {
        self.is_saturated_with(0)
    }

    /// Like [`ResilientSender::is_saturated`], but counts `inflight`
    /// messages the producer has already committed to emitting — outputs
    /// held for log stability, say — against the pending cap. Admission
    /// gates use this so deferred publication cannot overshoot the cap by
    /// a whole stability window's worth of admissions: without the
    /// headroom check, every event admitted while its predecessors' logs
    /// are still in flight lands on the queue *after* the gate said there
    /// was room.
    pub fn is_saturated_with(&self, inflight: usize) -> bool {
        let state = self.state.lock();
        state.pending.len() + inflight >= self.limits.pending_cap
            || self.inner.retained_len() >= self.limits.retained_cap
    }

    /// The saturation caps in effect on this handle.
    pub fn limits(&self) -> &SenderLimits {
        &self.limits
    }

    /// Consecutive failed attempts since the last successful send.
    pub fn failures(&self) -> u32 {
        self.state.lock().failures
    }

    /// Re-delivers retained messages with link sequence `>= from` (replay
    /// bypasses the severed flag, like a fresh TCP connection), drawing
    /// from the link's reserved replay credit class. Returns how many
    /// messages were re-sent; see [`LinkSender::replay_from`].
    pub fn replay_from(&self, from: u64) -> usize {
        self.inner.replay_from(from)
    }

    /// Drops retained messages below `upto` (downstream acknowledged them).
    pub fn ack_upto(&self, upto: u64) {
        self.inner.ack_upto(upto);
    }

    /// Messages retained by the underlying link for replay.
    pub fn retained_len(&self) -> usize {
        self.inner.retained_len()
    }

    /// Total messages successfully sent on the underlying link.
    pub fn sent(&self) -> u64 {
        self.inner.sent()
    }

    /// Severs the underlying link (failure injection).
    pub fn sever(&self) {
        self.inner.sever();
    }

    /// Heals the underlying link; queued messages go out on the next
    /// [`ResilientSender::send`] or [`ResilientSender::flush`].
    pub fn heal(&self) {
        self.inner.heal();
    }

    /// Whether the underlying link is severed.
    pub fn is_severed(&self) -> bool {
        self.inner.is_severed()
    }

    /// Injects a transient delivery-delay spike on the underlying link:
    /// sends within the next `window` take `extra` additional delay
    /// (chaos injection; see [`LinkSender::delay_spike`]).
    pub fn delay_spike(&self, extra: Duration, window: Duration) {
        self.inner.delay_spike(extra, window);
    }

    /// Clears an active delay spike early.
    pub fn clear_delay_spike(&self) {
        self.inner.clear_delay_spike();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{link, LinkConfig};

    #[test]
    fn concurrent_edge_registration_converges_on_shared_cells() {
        use std::sync::Arc;
        let registry = Arc::new(Registry::new());
        // Every thread registers the same (op, edge) cells and bumps them:
        // registration is idempotent, so the totals must all land on one
        // counter per name regardless of interleaving.
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let m = EdgeMetrics::registered(&registry, 1, 2);
                        m.sent.incr();
                        m.queued.incr();
                        m.retransmits.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = registry.snapshot();
        for name in ["edge.sent", "edge.queued", "edge.retransmits"] {
            assert_eq!(snap.counter(name, Labels::op_port(1, 2)), Some(800), "{name}");
        }
        // 4 counters + 4 gauges per edge, one cell each.
        assert_eq!(snap.samples.len(), 8, "no duplicate cells from racing registrations");
    }

    #[test]
    fn severed_sends_queue_and_flush_in_order() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        let tx = ResilientSender::with_backoff(
            tx,
            BackoffConfig { base: Duration::ZERO, cap: Duration::ZERO },
        );
        assert_eq!(tx.send(1), SendOutcome::Sent(0));
        tx.sever();
        assert_eq!(tx.send(2), SendOutcome::Queued);
        assert_eq!(tx.send(3), SendOutcome::Queued);
        assert_eq!(tx.pending_len(), 2);
        tx.heal();
        // A fresh send first drains the queue, preserving FIFO order.
        assert_eq!(tx.send(4), SendOutcome::Sent(3));
        assert_eq!(tx.pending_len(), 0);
        let got: Vec<u8> = (0..4).map(|_| rx.recv().unwrap().1).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn flush_retransmits_after_heal() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        let tx = ResilientSender::with_backoff(
            tx,
            BackoffConfig { base: Duration::ZERO, cap: Duration::ZERO },
        );
        tx.sever();
        tx.send(7);
        assert_eq!(tx.flush(), 1, "still severed: message stays queued");
        tx.heal();
        assert_eq!(tx.flush(), 0);
        assert_eq!(rx.recv().unwrap().1, 7);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = BackoffConfig { base: Duration::from_millis(2), cap: Duration::from_millis(10) };
        assert_eq!(cfg.delay(0), Duration::ZERO);
        assert_eq!(cfg.delay(1), Duration::from_millis(2));
        assert_eq!(cfg.delay(2), Duration::from_millis(4));
        assert_eq!(cfg.delay(3), Duration::from_millis(8));
        assert_eq!(cfg.delay(4), Duration::from_millis(10));
        assert_eq!(cfg.delay(60), Duration::from_millis(10));
    }

    #[test]
    fn backoff_window_defers_retransmission() {
        let (tx, _rx) = link::<u8>(LinkConfig::instant());
        let tx = ResilientSender::with_backoff(
            tx,
            BackoffConfig { base: Duration::from_secs(60), cap: Duration::from_secs(60) },
        );
        tx.sever();
        tx.send(1);
        tx.heal();
        // Inside the backoff window the flush is a no-op even though the
        // link is healthy again.
        assert_eq!(tx.flush(), 1);
        assert_eq!(tx.failures(), 1);
    }

    #[test]
    fn metrics_count_sends_queues_and_retransmits() {
        let registry = Registry::new();
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        let tx = ResilientSender::with_backoff(
            tx,
            BackoffConfig { base: Duration::ZERO, cap: Duration::ZERO },
        );
        tx.set_metrics(EdgeMetrics::registered(&registry, 2, 0));
        let labels = Labels::op_port(2, 0);
        tx.send(1);
        tx.sever();
        tx.send(2);
        tx.send(3);
        assert_eq!(registry.counter_value("edge.sent", labels), Some(1));
        assert_eq!(registry.counter_value("edge.queued", labels), Some(2));
        tx.heal();
        assert_eq!(tx.flush(), 0);
        assert_eq!(registry.counter_value("edge.retransmits", labels), Some(2));
        assert_eq!(registry.counter_value("edge.sent", labels), Some(3));
        drop(rx);
    }

    #[test]
    fn saturated_link_queues_without_backoff_penalty() {
        let cfg = LinkConfig::instant().with_capacity(1).with_replay_reserve(1);
        let (tx, rx) = link::<u8>(cfg);
        let tx = ResilientSender::with_backoff(
            tx,
            BackoffConfig { base: Duration::from_secs(60), cap: Duration::from_secs(60) },
        );
        assert_eq!(tx.send(1), SendOutcome::Sent(0));
        // Window exhausted: the send is accepted but reports saturation,
        // and no reconnect backoff starts (the link is healthy).
        assert_eq!(tx.send(2), SendOutcome::Saturated);
        assert_eq!(tx.failures(), 0);
        assert_eq!(tx.pending_len(), 1);
        // The consumer draining frees the window; flush retries at once
        // (no 60s backoff window in the way).
        assert_eq!(rx.recv().unwrap().1, 1);
        assert_eq!(tx.flush(), 0);
        assert_eq!(rx.recv().unwrap().1, 2);
    }

    #[test]
    fn pending_cap_reports_saturation_and_hwm() {
        let registry = Registry::new();
        let (tx, _rx) = link::<u8>(LinkConfig::instant());
        let tx = ResilientSender::with_backoff(
            tx,
            BackoffConfig { base: Duration::ZERO, cap: Duration::ZERO },
        )
        .with_limits(SenderLimits { pending_cap: 2, retained_cap: usize::MAX });
        tx.set_metrics(EdgeMetrics::registered(&registry, 0, 0));
        tx.sever();
        assert_eq!(tx.send(1), SendOutcome::Queued);
        assert!(!tx.is_saturated());
        assert_eq!(tx.send(2), SendOutcome::Saturated);
        assert!(tx.is_saturated());
        assert_eq!(tx.send(3), SendOutcome::Saturated, "over-cap sends are still accepted");
        assert_eq!(tx.pending_len(), 3, "soft cap: nothing is dropped");
        let labels = Labels::op_port(0, 0);
        assert_eq!(registry.gauge_value("edge.pending", labels), Some(3));
        assert_eq!(registry.gauge_value("edge.pending_hwm", labels), Some(3));
        assert_eq!(registry.counter_value("edge.saturated", labels), Some(2));
    }

    #[test]
    fn retained_cap_reports_saturation_until_acked() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        let tx = ResilientSender::new(tx)
            .with_limits(SenderLimits { pending_cap: 1024, retained_cap: 2 });
        assert_eq!(tx.send(1), SendOutcome::Sent(0));
        assert_eq!(tx.send(2), SendOutcome::Saturated);
        assert!(tx.is_saturated());
        tx.ack_upto(2);
        assert!(!tx.is_saturated());
        assert_eq!(tx.send(3), SendOutcome::Sent(2));
        drop(rx);
    }

    #[test]
    fn clones_share_the_pending_queue() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        let a = ResilientSender::with_backoff(
            tx,
            BackoffConfig { base: Duration::ZERO, cap: Duration::ZERO },
        );
        let b = a.clone();
        a.sever();
        a.send(1);
        b.send(2);
        assert_eq!(a.pending_len(), 2);
        b.heal();
        assert_eq!(b.flush(), 0);
        assert_eq!(rx.recv().unwrap().1, 1);
        assert_eq!(rx.recv().unwrap().1, 2);
    }
}

//! Pluggable frame transport: the process-boundary seam.
//!
//! The credit/replay/ack protocol that runs over [`crate::link`]s is
//! already message-framed — every hop exchanges discrete encoded frames,
//! never a byte stream — so the only thing a *real* network backend has
//! to provide is reliable delivery of opaque frames between two
//! endpoints. [`Transport`] captures exactly that: `bind` an address,
//! `accept`/`dial` connections, and exchange `Vec<u8>` frames.
//!
//! Two backends implement it:
//!
//! * [`MemTransport`] — in-process channel pairs behind string addresses.
//!   Keeps unit tests instantaneous and deterministic, and is the
//!   reference semantics the TCP backend must match.
//! * [`crate::tcp::TcpTransport`] — real sockets with length-prefixed,
//!   CRC-framed wire encoding, read/write timeouts, and torn-frame
//!   truncation (see `tcp.rs`).
//!
//! Connections are **full duplex**: [`FrameConn::split`] tears one
//! connection into independently owned send/receive halves so a bridge
//! can run a writer thread and a reader thread against the same peer —
//! data frames one way, control frames the other, exactly like the
//! paper's per-edge TCP connections.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

/// Largest frame any backend will send or accept (64 MiB), matching the
/// codec's length sanity bound: a corrupted length prefix becomes a clean
/// error instead of a huge allocation.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Errors surfaced by frame transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the connection (clean EOF at a frame boundary) or
    /// the connection is otherwise gone.
    Closed,
    /// A read or write timed out at a frame boundary; the connection may
    /// still be healthy (idle peer) — retry or tear down per policy.
    Timeout,
    /// The stream ended (or stalled past its timeout) in the middle of a
    /// frame. The partial bytes are discarded — torn-frame truncation —
    /// and the connection must be torn down and re-established.
    Torn {
        /// Bytes the frame still needed.
        needed: usize,
        /// Bytes actually read before the stream ended.
        got: usize,
    },
    /// The frame arrived complete but its checksum did not match.
    Crc {
        /// Checksum stored in the frame header.
        stored: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
    /// A length prefix exceeded [`MAX_FRAME`].
    TooLarge(u64),
    /// The address could not be bound, resolved, or dialed.
    Addr(String),
    /// Any other I/O failure, stringified.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Timeout => write!(f, "frame i/o timed out"),
            FrameError::Torn { needed, got } => {
                write!(f, "torn frame: needed {needed} more bytes, got {got}")
            }
            FrameError::Crc { stored, computed } => {
                write!(f, "frame crc mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            FrameError::TooLarge(len) => write!(f, "frame length {len} exceeds limit"),
            FrameError::Addr(msg) => write!(f, "address error: {msg}"),
            FrameError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// Whether the error means the connection is unusable and must be
    /// re-established (as opposed to a retryable idle timeout).
    pub fn is_fatal(&self) -> bool {
        !matches!(self, FrameError::Timeout)
    }
}

/// Sending half of a split connection.
pub trait FrameTx: Send {
    /// Writes one complete frame.
    fn send(&mut self, payload: &[u8]) -> Result<(), FrameError>;
}

/// Receiving half of a split connection.
pub trait FrameRx: Send {
    /// Reads one complete frame, honoring the backend's read timeout.
    fn recv(&mut self) -> Result<Vec<u8>, FrameError>;
}

/// One established full-duplex connection.
pub trait FrameConn: Send {
    /// Writes one complete frame.
    fn send(&mut self, payload: &[u8]) -> Result<(), FrameError>;
    /// Reads one complete frame, honoring the backend's read timeout.
    fn recv(&mut self) -> Result<Vec<u8>, FrameError>;
    /// Tears the connection into independently owned halves so a writer
    /// thread and a reader thread can share the peer.
    fn split(self: Box<Self>) -> (Box<dyn FrameTx>, Box<dyn FrameRx>);
    /// The peer's address, for diagnostics.
    fn peer_addr(&self) -> String;
}

/// A bound listening endpoint.
pub trait FrameListener: Send {
    /// Blocks until a peer connects (or the backend's accept timeout
    /// elapses, surfacing [`FrameError::Timeout`]).
    fn accept(&self) -> Result<Box<dyn FrameConn>, FrameError>;
    /// The concrete bound address — what peers should dial. Binding port
    /// `0` (TCP) or a `:0` suffix (mem) allocates a fresh address, so
    /// callers must read it back from here.
    fn local_addr(&self) -> String;
}

/// A frame-transport backend: the process-boundary abstraction.
pub trait Transport: Send + Sync {
    /// Binds a listening endpoint at `addr`.
    fn bind(&self, addr: &str) -> Result<Box<dyn FrameListener>, FrameError>;
    /// Dials a peer's bound endpoint. One attempt — reconnect policy
    /// (capped exponential backoff) lives in the caller, which knows
    /// whether the peer is expected back.
    fn dial(&self, addr: &str) -> Result<Box<dyn FrameConn>, FrameError>;
}

/// A cloneable, reconnect-aware handle to the sending half of a split
/// connection.
///
/// Bridges that redial keep the live [`FrameTx`] inside their writer loop,
/// which makes it single-owner — no other thread can opportunistically
/// send a frame on the same connection. `SharedFrameTx` is the shared
/// slot for that pattern: the writer [`install`](SharedFrameTx::install)s
/// each freshly dialed half (and owns redialing), while any thread may
/// [`send`](SharedFrameTx::send) through the current one. A send on a
/// dead or empty slot reports `false` and clears the slot; senders treat
/// that as "retry after the next reconnect", never as an error.
#[derive(Clone, Default)]
pub struct SharedFrameTx {
    slot: Arc<Mutex<Option<Box<dyn FrameTx>>>>,
}

impl fmt::Debug for SharedFrameTx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedFrameTx").field("connected", &self.is_connected()).finish()
    }
}

impl SharedFrameTx {
    /// An empty (disconnected) slot.
    pub fn new() -> SharedFrameTx {
        SharedFrameTx::default()
    }

    /// Installs a freshly dialed sending half, replacing whatever was
    /// there.
    pub fn install(&self, tx: Box<dyn FrameTx>) {
        *self.slot.lock() = Some(tx);
    }

    /// Drops the current sending half; subsequent sends report `false`
    /// until a new one is installed.
    pub fn disconnect(&self) {
        *self.slot.lock() = None;
    }

    /// Whether a sending half is currently installed.
    pub fn is_connected(&self) -> bool {
        self.slot.lock().is_some()
    }

    /// Sends one frame through the installed half. Returns `false` — and
    /// clears the slot on a fatal error, so the owning writer redials —
    /// when the slot is empty or the send fails.
    pub fn send(&self, payload: &[u8]) -> bool {
        let mut slot = self.slot.lock();
        match slot.as_mut() {
            None => false,
            Some(tx) => match tx.send(payload) {
                Ok(()) => true,
                Err(e) => {
                    if e.is_fatal() {
                        *slot = None;
                    }
                    false
                }
            },
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

type MemPipe = (Sender<Vec<u8>>, Receiver<Vec<u8>>);

struct MemRegistry {
    listeners: Mutex<HashMap<String, Sender<(String, MemPipe)>>>,
    next_auto: AtomicU64,
}

/// In-process [`Transport`]: string addresses resolve to channel pairs
/// inside one registry. Two `MemTransport` clones share the registry, so
/// a test creates one, hands clones to both "processes", and wires them
/// exactly as TCP would — minus the syscalls and the ports.
#[derive(Clone)]
pub struct MemTransport {
    registry: Arc<MemRegistry>,
    read_timeout: Option<Duration>,
}

impl fmt::Debug for MemTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemTransport")
            .field("listeners", &self.registry.listeners.lock().len())
            .finish()
    }
}

impl Default for MemTransport {
    fn default() -> Self {
        MemTransport::new()
    }
}

impl MemTransport {
    /// A fresh, empty address space.
    pub fn new() -> MemTransport {
        MemTransport {
            registry: Arc::new(MemRegistry {
                listeners: Mutex::new(HashMap::new()),
                next_auto: AtomicU64::new(1),
            }),
            read_timeout: None,
        }
    }

    /// Sets the receive timeout applied to connections made through this
    /// handle (mirrors the TCP backend's read timeout).
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Duration) -> MemTransport {
        self.read_timeout = Some(timeout);
        self
    }
}

impl Transport for MemTransport {
    fn bind(&self, addr: &str) -> Result<Box<dyn FrameListener>, FrameError> {
        let addr = if addr.is_empty() || addr.ends_with(":0") {
            let n = self.registry.next_auto.fetch_add(1, Ordering::Relaxed);
            format!("mem:{n}")
        } else {
            addr.to_string()
        };
        let mut listeners = self.registry.listeners.lock();
        if listeners.contains_key(&addr) {
            return Err(FrameError::Addr(format!("{addr} already bound")));
        }
        let (tx, rx) = unbounded();
        listeners.insert(addr.clone(), tx);
        Ok(Box::new(MemListener {
            addr,
            rx,
            read_timeout: self.read_timeout,
            registry: self.registry.clone(),
        }))
    }

    fn dial(&self, addr: &str) -> Result<Box<dyn FrameConn>, FrameError> {
        let accept_tx = self
            .registry
            .listeners
            .lock()
            .get(addr)
            .cloned()
            .ok_or_else(|| FrameError::Addr(format!("nothing bound at {addr}")))?;
        let (a_tx, a_rx) = unbounded();
        let (b_tx, b_rx) = unbounded();
        let dialer_addr = {
            let n = self.registry.next_auto.fetch_add(1, Ordering::Relaxed);
            format!("mem:dialer:{n}")
        };
        accept_tx
            .send((dialer_addr, (b_tx, a_rx)))
            .map_err(|_| FrameError::Addr(format!("listener at {addr} is gone")))?;
        Ok(Box::new(MemConn {
            tx: a_tx,
            rx: b_rx,
            peer: addr.to_string(),
            read_timeout: self.read_timeout,
        }))
    }
}

struct MemListener {
    addr: String,
    rx: Receiver<(String, MemPipe)>,
    read_timeout: Option<Duration>,
    registry: Arc<MemRegistry>,
}

impl FrameListener for MemListener {
    fn accept(&self) -> Result<Box<dyn FrameConn>, FrameError> {
        let (peer, (tx, rx)) = match self.read_timeout {
            Some(t) => self.rx.recv_timeout(t).map_err(|e| match e {
                RecvTimeoutError::Timeout => FrameError::Timeout,
                RecvTimeoutError::Disconnected => FrameError::Closed,
            })?,
            None => self.rx.recv().map_err(|_| FrameError::Closed)?,
        };
        Ok(Box::new(MemConn { tx, rx, peer, read_timeout: self.read_timeout }))
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

impl Drop for MemListener {
    fn drop(&mut self) {
        self.registry.listeners.lock().remove(&self.addr);
    }
}

struct MemConn {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    peer: String,
    read_timeout: Option<Duration>,
}

fn mem_send(tx: &Sender<Vec<u8>>, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME {
        return Err(FrameError::TooLarge(payload.len() as u64));
    }
    tx.send(payload.to_vec()).map_err(|_| FrameError::Closed)
}

fn mem_recv(rx: &Receiver<Vec<u8>>, timeout: Option<Duration>) -> Result<Vec<u8>, FrameError> {
    match timeout {
        Some(t) => rx.recv_timeout(t).map_err(|e| match e {
            RecvTimeoutError::Timeout => FrameError::Timeout,
            RecvTimeoutError::Disconnected => FrameError::Closed,
        }),
        None => rx.recv().map_err(|_| FrameError::Closed),
    }
}

impl FrameConn for MemConn {
    fn send(&mut self, payload: &[u8]) -> Result<(), FrameError> {
        mem_send(&self.tx, payload)
    }

    fn recv(&mut self) -> Result<Vec<u8>, FrameError> {
        mem_recv(&self.rx, self.read_timeout)
    }

    fn split(self: Box<Self>) -> (Box<dyn FrameTx>, Box<dyn FrameRx>) {
        (
            Box::new(MemTxHalf { tx: self.tx }),
            Box::new(MemRxHalf { rx: self.rx, read_timeout: self.read_timeout }),
        )
    }

    fn peer_addr(&self) -> String {
        self.peer.clone()
    }
}

struct MemTxHalf {
    tx: Sender<Vec<u8>>,
}

impl FrameTx for MemTxHalf {
    fn send(&mut self, payload: &[u8]) -> Result<(), FrameError> {
        mem_send(&self.tx, payload)
    }
}

struct MemRxHalf {
    rx: Receiver<Vec<u8>>,
    read_timeout: Option<Duration>,
}

impl FrameRx for MemRxHalf {
    fn recv(&mut self) -> Result<Vec<u8>, FrameError> {
        mem_recv(&self.rx, self.read_timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_dial_accept_exchanges_frames_both_ways() {
        let t = MemTransport::new();
        let listener = t.bind("mem:ctrl").unwrap();
        assert_eq!(listener.local_addr(), "mem:ctrl");
        let mut dialed = t.dial("mem:ctrl").unwrap();
        let mut accepted = listener.accept().unwrap();
        dialed.send(b"ping").unwrap();
        assert_eq!(accepted.recv().unwrap(), b"ping");
        accepted.send(b"pong").unwrap();
        assert_eq!(dialed.recv().unwrap(), b"pong");
        assert_eq!(dialed.peer_addr(), "mem:ctrl");
    }

    #[test]
    fn mem_auto_addresses_are_unique() {
        let t = MemTransport::new();
        let a = t.bind(":0").unwrap();
        let b = t.bind("").unwrap();
        assert_ne!(a.local_addr(), b.local_addr());
        assert!(a.local_addr().starts_with("mem:"));
    }

    #[test]
    fn mem_double_bind_and_unknown_dial_are_address_errors() {
        let t = MemTransport::new();
        let _l = t.bind("mem:x").unwrap();
        assert!(matches!(t.bind("mem:x"), Err(FrameError::Addr(_))));
        assert!(matches!(t.dial("mem:y"), Err(FrameError::Addr(_))));
    }

    #[test]
    fn mem_listener_drop_frees_the_address() {
        let t = MemTransport::new();
        drop(t.bind("mem:x").unwrap());
        let _again = t.bind("mem:x").unwrap();
    }

    #[test]
    fn mem_split_halves_work_from_separate_threads() {
        let t = MemTransport::new();
        let listener = t.bind("mem:dup").unwrap();
        let conn = t.dial("mem:dup").unwrap();
        let (mut tx, mut rx) = conn.split();
        let peer = listener.accept().unwrap();
        let (mut peer_tx, mut peer_rx) = peer.split();
        let writer = std::thread::spawn(move || {
            for i in 0..10u8 {
                tx.send(&[i]).unwrap();
            }
        });
        let echoer = std::thread::spawn(move || {
            for _ in 0..10 {
                let f = peer_rx.recv().unwrap();
                peer_tx.send(&f).unwrap();
            }
        });
        for i in 0..10u8 {
            assert_eq!(rx.recv().unwrap(), vec![i]);
        }
        writer.join().unwrap();
        echoer.join().unwrap();
    }

    #[test]
    fn mem_closed_peer_surfaces_closed() {
        let t = MemTransport::new();
        let listener = t.bind("mem:gone").unwrap();
        let mut conn = t.dial("mem:gone").unwrap();
        drop(listener.accept().unwrap());
        assert_eq!(conn.recv().unwrap_err(), FrameError::Closed);
    }

    #[test]
    fn mem_read_timeout_is_not_fatal() {
        let t = MemTransport::new().with_read_timeout(Duration::from_millis(5));
        let listener = t.bind("mem:slow").unwrap();
        let mut conn = t.dial("mem:slow").unwrap();
        let _peer = listener.accept().unwrap();
        let err = conn.recv().unwrap_err();
        assert_eq!(err, FrameError::Timeout);
        assert!(!err.is_fatal());
        assert!(FrameError::Closed.is_fatal());
        assert!(FrameError::Torn { needed: 4, got: 1 }.is_fatal());
    }

    #[test]
    fn display_messages_are_informative() {
        assert!(FrameError::Torn { needed: 7, got: 1 }.to_string().contains("torn"));
        assert!(FrameError::Crc { stored: 1, computed: 2 }.to_string().contains("crc"));
        assert!(FrameError::TooLarge(99).to_string().contains("99"));
    }
}

//! Simulated network links between operators.
//!
//! In the paper's testbed, operators are OS processes connected by TCP
//! (§2.3); the evaluation notes that real network hops only add a
//! roughly-constant latency to the curves (§4, discussion of Figure 3).
//! This crate reproduces exactly the properties the protocols rely on:
//!
//! * **ordered, reliable delivery** while connected (TCP semantics);
//! * configurable **propagation delay** with optional jitter (FIFO order is
//!   preserved, as on a TCP stream);
//! * **output-buffer retention**: every message gets a link sequence
//!   number and is retained by the sender until acknowledged, so a
//!   recovering downstream can request **replay from a sequence number**
//!   (upstream backup, §2.2);
//! * **credit-based flow control**: each link carries at most
//!   [`LinkConfig::capacity`] undelivered messages. A send consumes one
//!   credit; delivery returns it. When credits are exhausted the send
//!   fails fast with [`LinkError::Saturated`] instead of growing memory —
//!   the TCP-window analogue that propagates backpressure upstream.
//!   Replay traffic draws from a **reserved credit class**
//!   ([`LinkConfig::replay_reserve`]) so a recovering consumer can always
//!   make progress even when the normal window is saturated (the
//!   deadlock-freedom requirement: replay and credit grants must never
//!   wait on each other);
//! * **failure injection**: a link can be severed and healed, sends while
//!   severed fail like writes on a broken socket, and a transient
//!   [`LinkSender::delay_spike`] models congestion without reordering.
//!
//! # Example
//!
//! ```
//! use streammine_net::{link, LinkConfig};
//!
//! let (tx, rx) = link::<u32>(LinkConfig::instant());
//! tx.send(7)?;
//! tx.send(8)?;
//! assert_eq!(rx.recv()?, (0, 7));
//! assert_eq!(rx.recv()?, (1, 8));
//! // Downstream crashed and recovered: replay everything retained.
//! tx.replay_from(0);
//! assert_eq!(rx.recv()?, (0, 7));
//! # Ok::<(), streammine_net::LinkError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod resilient;
pub mod tcp;
pub mod transport;

pub use resilient::{BackoffConfig, EdgeMetrics, ResilientSender, SendOutcome, SenderLimits};
pub use tcp::TcpTransport;
pub use transport::{
    FrameConn, FrameError, FrameListener, FrameRx, FrameTx, MemTransport, SharedFrameTx, Transport,
    MAX_FRAME,
};

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use streammine_common::rng::DetRng;

/// Errors surfaced by link operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkError {
    /// The link is severed (failure injection) or the peer was dropped.
    Disconnected,
    /// `recv_timeout` elapsed without a message.
    Timeout,
    /// The link's credit window is exhausted: the consumer has not yet
    /// delivered enough in-flight messages. The message was **not** sent;
    /// retry after the consumer drains (backpressure, not failure).
    Saturated,
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Disconnected => write!(f, "link disconnected"),
            LinkError::Timeout => write!(f, "receive timed out"),
            LinkError::Saturated => write!(f, "link saturated (send window exhausted)"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Default normal-class credit window of a link.
pub const DEFAULT_LINK_CAPACITY: usize = 1024;

/// Default reserved replay credit class of a link.
pub const DEFAULT_REPLAY_RESERVE: usize = 64;

/// Propagation-delay and flow-control model of a link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation delay added to each message.
    pub delay: Duration,
    /// Uniform jitter fraction on `delay` (FIFO order still preserved).
    pub jitter: f64,
    /// Seed for the jitter generator.
    pub seed: u64,
    /// Normal-class credit window: the maximum number of undelivered
    /// live messages in flight. Sends beyond it fail with
    /// [`LinkError::Saturated`] until the consumer drains.
    pub capacity: usize,
    /// Reserved credit class for replay traffic, on top of `capacity`.
    /// Replay re-sends draw from this pool so recovery makes progress
    /// even when the normal window is saturated.
    pub replay_reserve: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::instant()
    }
}

impl LinkConfig {
    /// Zero-delay link (operators co-located in one process).
    pub fn instant() -> Self {
        LinkConfig {
            delay: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
            capacity: DEFAULT_LINK_CAPACITY,
            replay_reserve: DEFAULT_REPLAY_RESERVE,
        }
    }

    /// Typical LAN hop: 300 µs ± 20 %.
    pub fn lan() -> Self {
        LinkConfig {
            delay: Duration::from_micros(300),
            jitter: 0.2,
            seed: 0x1A4,
            ..Self::instant()
        }
    }

    /// Typical WAN hop: 20 ms ± 20 %.
    pub fn wan() -> Self {
        LinkConfig { delay: Duration::from_millis(20), jitter: 0.2, seed: 0x3A4, ..Self::instant() }
    }

    /// A fixed custom delay without jitter.
    pub fn with_delay(delay: Duration) -> Self {
        LinkConfig { delay, ..Self::instant() }
    }

    /// Overrides the normal-class credit window.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Overrides the reserved replay credit class.
    #[must_use]
    pub fn with_replay_reserve(mut self, reserve: usize) -> Self {
        self.replay_reserve = reserve;
        self
    }
}

/// Which credit pool an in-flight message drew from. Returned to the same
/// pool at delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CreditClass {
    Normal,
    Replay,
}

struct Spike {
    extra: Duration,
    until: Instant,
}

struct LinkShared<T> {
    severed: AtomicBool,
    retained: Mutex<VecDeque<(u64, T)>>,
    /// Normal-class credits remaining; a live send consumes one, delivery
    /// returns it. Never exceeds `capacity`, never goes below zero
    /// (acquire is fetch_sub + restore on failure).
    credits: AtomicI64,
    /// Replay-class credits remaining (reserved pool).
    replay_credits: AtomicI64,
    /// Transient extra delay window (congestion spike); self-clearing.
    spike: Mutex<Option<Spike>>,
}

/// Sending half of a link.
pub struct LinkSender<T> {
    shared: Arc<LinkShared<T>>,
    tx: Sender<(Instant, u64, CreditClass, T)>,
    next_seq: Arc<AtomicU64>,
    last_due: Arc<Mutex<Instant>>,
    config: LinkConfig,
    rng: Arc<Mutex<DetRng>>,
}

impl<T> Clone for LinkSender<T> {
    fn clone(&self) -> Self {
        LinkSender {
            shared: self.shared.clone(),
            tx: self.tx.clone(),
            next_seq: self.next_seq.clone(),
            last_due: self.last_due.clone(),
            config: self.config.clone(),
            rng: self.rng.clone(),
        }
    }
}

impl<T> fmt::Debug for LinkSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LinkSender")
            .field("next_seq", &self.next_seq.load(Ordering::Relaxed))
            .field("severed", &self.shared.severed.load(Ordering::Relaxed))
            .field("credits", &self.shared.credits.load(Ordering::Relaxed))
            .finish()
    }
}

/// Receiving half of a link.
pub struct LinkReceiver<T> {
    shared: Arc<LinkShared<T>>,
    rx: Receiver<(Instant, u64, CreditClass, T)>,
}

impl<T> fmt::Debug for LinkReceiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LinkReceiver")
            .field("severed", &self.shared.severed.load(Ordering::Relaxed))
            .finish()
    }
}

fn as_credits(n: usize) -> i64 {
    i64::try_from(n).unwrap_or(i64::MAX)
}

/// Creates a link with the given delay and flow-control model.
///
/// # Panics
///
/// Panics when `config.capacity` or `config.replay_reserve` is zero: a
/// zero-credit link could never carry (or replay) a message.
pub fn link<T: Clone + Send + 'static>(config: LinkConfig) -> (LinkSender<T>, LinkReceiver<T>) {
    assert!(config.capacity > 0, "link capacity must be at least 1");
    assert!(config.replay_reserve > 0, "replay reserve must be at least 1");
    // The channel bound is a backstop: credit accounting already caps the
    // queue at capacity + replay_reserve, so channel sends never block.
    let (tx, rx) = crossbeam_channel::bounded(config.capacity + config.replay_reserve);
    let shared = Arc::new(LinkShared {
        severed: AtomicBool::new(false),
        retained: Mutex::new(VecDeque::new()),
        credits: AtomicI64::new(as_credits(config.capacity)),
        replay_credits: AtomicI64::new(as_credits(config.replay_reserve)),
        spike: Mutex::new(None),
    });
    let seed = config.seed;
    (
        LinkSender {
            shared: shared.clone(),
            tx,
            next_seq: Arc::new(AtomicU64::new(0)),
            last_due: Arc::new(Mutex::new(Instant::now())),
            config,
            rng: Arc::new(Mutex::new(DetRng::seed_from(seed))),
        },
        LinkReceiver { shared, rx },
    )
}

impl<T> LinkShared<T> {
    /// Takes one credit from `class`; `false` when the pool is empty.
    fn acquire(&self, class: CreditClass) -> bool {
        let pool = match class {
            CreditClass::Normal => &self.credits,
            CreditClass::Replay => &self.replay_credits,
        };
        if pool.fetch_sub(1, Ordering::AcqRel) <= 0 {
            pool.fetch_add(1, Ordering::AcqRel);
            return false;
        }
        true
    }

    /// Returns one credit to `class` (at delivery or on a failed send).
    fn release(&self, class: CreditClass) {
        match class {
            CreditClass::Normal => self.credits.fetch_add(1, Ordering::AcqRel),
            CreditClass::Replay => self.replay_credits.fetch_add(1, Ordering::AcqRel),
        };
    }
}

impl<T: Clone + Send + 'static> LinkSender<T> {
    fn due_time(&self) -> Instant {
        let mut delay = self.config.delay.as_secs_f64();
        if self.config.jitter > 0.0 {
            let f = 1.0 + self.config.jitter * (2.0 * self.rng.lock().next_f64() - 1.0);
            delay *= f;
        }
        let now = Instant::now();
        let mut due = now + Duration::from_secs_f64(delay.max(0.0));
        {
            let mut spike = self.shared.spike.lock();
            match spike.as_ref() {
                Some(s) if now < s.until => due += s.extra,
                Some(_) => *spike = None, // expired: self-clearing
                None => {}
            }
        }
        // FIFO: a message never arrives before its predecessor.
        let mut last = self.last_due.lock();
        let due = due.max(*last);
        *last = due;
        due
    }

    /// Sends a message; returns its link sequence number.
    ///
    /// The message is retained for replay until acknowledged via
    /// [`LinkSender::ack_upto`]. Consumes one normal-class credit,
    /// returned when the receiver delivers the message.
    ///
    /// # Errors
    ///
    /// [`LinkError::Disconnected`] while the link is severed or the
    /// receiver is gone; [`LinkError::Saturated`] when the credit window
    /// is exhausted (the message is neither sent nor retained — retry
    /// after the consumer drains).
    pub fn send(&self, msg: T) -> Result<u64, LinkError> {
        if self.shared.severed.load(Ordering::Acquire) {
            return Err(LinkError::Disconnected);
        }
        // Credit before sequence: a saturated send must not burn a seq
        // number, or the receiver's reorder buffer would see a gap.
        if !self.shared.acquire(CreditClass::Normal) {
            return Err(LinkError::Saturated);
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        {
            let mut retained = self.shared.retained.lock();
            retained.push_back((seq, msg.clone()));
        }
        let due = self.due_time();
        if self.tx.send((due, seq, CreditClass::Normal, msg)).is_err() {
            // Receiver gone; the message stays retained for replay but its
            // credit comes back so accounting cannot leak.
            self.shared.release(CreditClass::Normal);
            return Err(LinkError::Disconnected);
        }
        Ok(seq)
    }

    /// Re-delivers every retained message with sequence `>= from`, in
    /// order, drawing from the reserved replay credit class. Used when the
    /// downstream recovers from a crash.
    ///
    /// Returns how many messages were re-sent. When the replay reserve
    /// runs out mid-replay the remainder is **not** sent (never skipped —
    /// a gap would wedge the receiver's reorder buffer); the caller's
    /// replay-retry watchdog re-requests the suffix once the consumer has
    /// drained.
    pub fn replay_from(&self, from: u64) -> usize {
        let to_replay: Vec<(u64, T)> = {
            let retained = self.shared.retained.lock();
            retained.iter().filter(|(s, _)| *s >= from).cloned().collect()
        };
        let mut sent = 0;
        for (seq, msg) in to_replay {
            if !self.shared.acquire(CreditClass::Replay) {
                break;
            }
            let due = self.due_time();
            if self.tx.send((due, seq, CreditClass::Replay, msg)).is_err() {
                self.shared.release(CreditClass::Replay);
                break;
            }
            sent += 1;
        }
        sent
    }

    /// Drops retained messages with sequence `< upto` — the downstream
    /// confirmed it will never need them again (paper's control message 5).
    /// This is the end-to-end credit grant piggybacked on acks: trimming
    /// retention is what lets the producer's retained-buffer cap admit new
    /// work.
    pub fn ack_upto(&self, upto: u64) {
        let mut retained = self.shared.retained.lock();
        while retained.front().map(|(s, _)| *s < upto).unwrap_or(false) {
            retained.pop_front();
        }
    }

    /// Number of messages currently retained for replay.
    pub fn retained_len(&self) -> usize {
        self.shared.retained.lock().len()
    }

    /// Total messages ever sent.
    pub fn sent(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Overrides the next link sequence number.
    ///
    /// Used when a fresh process incarnation adopts a surviving peer's
    /// delivery state: the reconnect handshake reports how many frames
    /// the receiver already consumed, and the sender continues numbering
    /// from there so the receiver's reorder buffer sees neither a gap
    /// nor stale duplicates. Only meaningful before the first send.
    pub fn set_next_seq(&self, next: u64) {
        self.next_seq.store(next, Ordering::Relaxed);
    }

    /// Normal-class credits currently available.
    pub fn credits_available(&self) -> i64 {
        self.shared.credits.load(Ordering::Acquire)
    }

    /// Replay-class credits currently available.
    pub fn replay_credits_available(&self) -> i64 {
        self.shared.replay_credits.load(Ordering::Acquire)
    }

    /// The configured normal-class credit window.
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Severs the link (failure injection): subsequent sends fail.
    pub fn sever(&self) {
        self.shared.severed.store(true, Ordering::Release);
    }

    /// Heals a severed link.
    pub fn heal(&self) {
        self.shared.severed.store(false, Ordering::Release);
    }

    /// Whether the link is currently severed.
    pub fn is_severed(&self) -> bool {
        self.shared.severed.load(Ordering::Acquire)
    }

    /// Adds `extra` propagation delay to every message sent within the
    /// next `window` (a congestion spike). Self-clearing; FIFO order is
    /// still preserved.
    pub fn delay_spike(&self, extra: Duration, window: Duration) {
        *self.shared.spike.lock() = Some(Spike { extra, until: Instant::now() + window });
    }

    /// Clears any active delay spike.
    pub fn clear_delay_spike(&self) {
        *self.shared.spike.lock() = None;
    }
}

impl<T: Clone + Send + 'static> LinkReceiver<T> {
    fn deliver(&self, due: Instant, seq: u64, class: CreditClass, msg: T) -> (u64, T) {
        // Credit returns at dequeue, before the propagation-delay sleep:
        // the wire slot is free as soon as the consumer takes the message.
        self.shared.release(class);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        (seq, msg)
    }

    /// Blocks for the next message; returns `(link_seq, message)`.
    ///
    /// # Errors
    ///
    /// [`LinkError::Disconnected`] when every sender is gone.
    pub fn recv(&self) -> Result<(u64, T), LinkError> {
        let (due, seq, class, msg) = self.rx.recv().map_err(|_| LinkError::Disconnected)?;
        Ok(self.deliver(due, seq, class, msg))
    }

    /// Non-blocking receive. `Ok(None)` when no message is queued (a taken
    /// message still sleeps out its remaining propagation delay).
    ///
    /// # Errors
    ///
    /// [`LinkError::Disconnected`] when every sender is gone.
    pub fn try_recv(&self) -> Result<Option<(u64, T)>, LinkError> {
        match self.rx.try_recv() {
            Ok((due, seq, class, msg)) => Ok(Some(self.deliver(due, seq, class, msg))),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(LinkError::Disconnected),
        }
    }

    /// Blocking receive with a timeout.
    ///
    /// # Errors
    ///
    /// [`LinkError::Timeout`] on timeout, [`LinkError::Disconnected`] when
    /// every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(u64, T), LinkError> {
        match self.rx.recv_timeout(timeout) {
            Ok((due, seq, class, msg)) => Ok(self.deliver(due, seq, class, msg)),
            Err(RecvTimeoutError::Timeout) => Err(LinkError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(LinkError::Disconnected),
        }
    }

    /// Drains and discards everything currently queued (crash simulation:
    /// in-flight messages to a dead process are lost). Credits return to
    /// their pools — the wire empties even though the process died.
    pub fn drain(&self) -> usize {
        let mut n = 0;
        while let Ok((_, _, class, _)) = self.rx.try_recv() {
            self.shared.release(class);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_delivery_with_sequence_numbers() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        for i in 0..10 {
            assert_eq!(tx.send(i).unwrap(), u64::from(i));
        }
        for i in 0..10u8 {
            assert_eq!(rx.recv().unwrap(), (u64::from(i), i));
        }
    }

    #[test]
    fn delay_is_applied() {
        let (tx, rx) = link::<u8>(LinkConfig::with_delay(Duration::from_millis(5)));
        let start = Instant::now();
        tx.send(1).unwrap();
        let _ = rx.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn jittered_delay_preserves_fifo() {
        let cfg = LinkConfig {
            delay: Duration::from_micros(500),
            jitter: 0.9,
            seed: 42,
            ..LinkConfig::instant()
        };
        let (tx, rx) = link::<u32>(cfg);
        for i in 0..50 {
            tx.send(i).unwrap();
        }
        let mut prev = None;
        for _ in 0..50 {
            let (seq, _) = rx.recv().unwrap();
            if let Some(p) = prev {
                assert!(seq > p, "FIFO violated: {seq} after {p}");
            }
            prev = Some(seq);
        }
    }

    #[test]
    fn replay_redelivers_retained_suffix() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        for _ in 0..5 {
            rx.recv().unwrap();
        }
        assert_eq!(tx.replay_from(2), 3);
        assert_eq!(rx.recv().unwrap(), (2, 2));
        assert_eq!(rx.recv().unwrap(), (3, 3));
        assert_eq!(rx.recv().unwrap(), (4, 4));
    }

    #[test]
    fn ack_trims_retention() {
        let (tx, _rx) = link::<u8>(LinkConfig::instant());
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.retained_len(), 10);
        tx.ack_upto(7);
        assert_eq!(tx.retained_len(), 3);
    }

    #[test]
    fn severed_link_rejects_sends_until_healed() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        tx.send(1).unwrap();
        tx.sever();
        assert!(tx.is_severed());
        assert_eq!(tx.send(2).unwrap_err(), LinkError::Disconnected);
        tx.heal();
        tx.send(3).unwrap();
        assert_eq!(rx.recv().unwrap().1, 1);
        assert_eq!(rx.recv().unwrap().1, 3);
    }

    #[test]
    fn try_recv_and_timeout() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        assert_eq!(rx.try_recv().unwrap(), None);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)).unwrap_err(), LinkError::Timeout);
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv().unwrap(), Some((0, 9)));
    }

    #[test]
    fn disconnect_when_sender_dropped() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        drop(tx);
        assert_eq!(rx.recv().unwrap_err(), LinkError::Disconnected);
    }

    #[test]
    fn drain_discards_queued_messages() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.drain(), 4);
        assert_eq!(rx.try_recv().unwrap(), None);
    }

    #[test]
    fn cloned_sender_shares_sequence_space() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(tx.sent(), 2);
        assert_eq!(rx.recv().unwrap(), (0, 1));
        assert_eq!(rx.recv().unwrap(), (1, 2));
    }

    #[test]
    fn saturated_send_fails_without_burning_sequence() {
        let cfg = LinkConfig::instant().with_capacity(2).with_replay_reserve(1);
        let (tx, rx) = link::<u8>(cfg);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.send(3).unwrap_err(), LinkError::Saturated);
        assert_eq!(tx.sent(), 2, "a saturated send must not allocate a seq");
        assert_eq!(tx.credits_available(), 0);
        // Draining returns the credits; the send then succeeds with the
        // next contiguous sequence number.
        assert_eq!(rx.recv().unwrap(), (0, 1));
        assert_eq!(tx.send(3).unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), (1, 2));
        assert_eq!(rx.recv().unwrap(), (2, 3));
        assert_eq!(tx.credits_available(), 2);
    }

    #[test]
    fn replay_uses_reserved_credits_when_saturated() {
        let cfg = LinkConfig::instant().with_capacity(2).with_replay_reserve(2);
        let (tx, rx) = link::<u8>(cfg);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.send(3).unwrap_err(), LinkError::Saturated);
        // The normal window is fully saturated, yet replay still proceeds
        // from the reserved pool.
        assert_eq!(tx.replay_from(0), 2);
        assert_eq!(tx.replay_credits_available(), 0);
        // Further replay stops (never skips) until the consumer drains.
        assert_eq!(tx.replay_from(0), 0);
        let mut seqs = Vec::new();
        for _ in 0..4 {
            seqs.push(rx.recv().unwrap().0);
        }
        assert_eq!(seqs, vec![0, 1, 0, 1]);
        assert_eq!(tx.credits_available(), 2);
        assert_eq!(tx.replay_credits_available(), 2);
    }

    #[test]
    fn delay_spike_applies_then_self_clears() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        tx.delay_spike(Duration::from_millis(10), Duration::from_millis(50));
        let start = Instant::now();
        tx.send(1).unwrap();
        let _ = rx.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(10));
        tx.clear_delay_spike();
        let start = Instant::now();
        tx.send(2).unwrap();
        let _ = rx.recv().unwrap();
        assert!(start.elapsed() < Duration::from_millis(10));
    }
}

//! Simulated network links between operators.
//!
//! In the paper's testbed, operators are OS processes connected by TCP
//! (§2.3); the evaluation notes that real network hops only add a
//! roughly-constant latency to the curves (§4, discussion of Figure 3).
//! This crate reproduces exactly the properties the protocols rely on:
//!
//! * **ordered, reliable delivery** while connected (TCP semantics);
//! * configurable **propagation delay** with optional jitter (FIFO order is
//!   preserved, as on a TCP stream);
//! * **output-buffer retention**: every message gets a link sequence
//!   number and is retained by the sender until acknowledged, so a
//!   recovering downstream can request **replay from a sequence number**
//!   (upstream backup, §2.2);
//! * **failure injection**: a link can be severed and healed, and sends
//!   while severed fail like writes on a broken socket.
//!
//! # Example
//!
//! ```
//! use streammine_net::{link, LinkConfig};
//!
//! let (tx, rx) = link::<u32>(LinkConfig::instant());
//! tx.send(7)?;
//! tx.send(8)?;
//! assert_eq!(rx.recv()?, (0, 7));
//! assert_eq!(rx.recv()?, (1, 8));
//! // Downstream crashed and recovered: replay everything retained.
//! tx.replay_from(0);
//! assert_eq!(rx.recv()?, (0, 7));
//! # Ok::<(), streammine_net::LinkError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod resilient;

pub use resilient::{BackoffConfig, EdgeMetrics, ResilientSender, SendOutcome};

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use streammine_common::rng::DetRng;

/// Errors surfaced by link operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkError {
    /// The link is severed (failure injection) or the peer was dropped.
    Disconnected,
    /// `recv_timeout` elapsed without a message.
    Timeout,
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Disconnected => write!(f, "link disconnected"),
            LinkError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Propagation-delay model of a link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation delay added to each message.
    pub delay: Duration,
    /// Uniform jitter fraction on `delay` (FIFO order still preserved).
    pub jitter: f64,
    /// Seed for the jitter generator.
    pub seed: u64,
}

impl LinkConfig {
    /// Zero-delay link (operators co-located in one process).
    pub fn instant() -> Self {
        LinkConfig { delay: Duration::ZERO, jitter: 0.0, seed: 0 }
    }

    /// Typical LAN hop: 300 µs ± 20 %.
    pub fn lan() -> Self {
        LinkConfig { delay: Duration::from_micros(300), jitter: 0.2, seed: 0x1A4 }
    }

    /// Typical WAN hop: 20 ms ± 20 %.
    pub fn wan() -> Self {
        LinkConfig { delay: Duration::from_millis(20), jitter: 0.2, seed: 0x3A4 }
    }

    /// A fixed custom delay without jitter.
    pub fn with_delay(delay: Duration) -> Self {
        LinkConfig { delay, jitter: 0.0, seed: 0 }
    }
}

struct LinkShared<T> {
    severed: AtomicBool,
    retained: Mutex<VecDeque<(u64, T)>>,
}

/// Sending half of a link.
pub struct LinkSender<T> {
    shared: Arc<LinkShared<T>>,
    tx: Sender<(Instant, u64, T)>,
    next_seq: Arc<AtomicU64>,
    last_due: Arc<Mutex<Instant>>,
    config: LinkConfig,
    rng: Arc<Mutex<DetRng>>,
}

impl<T> Clone for LinkSender<T> {
    fn clone(&self) -> Self {
        LinkSender {
            shared: self.shared.clone(),
            tx: self.tx.clone(),
            next_seq: self.next_seq.clone(),
            last_due: self.last_due.clone(),
            config: self.config.clone(),
            rng: self.rng.clone(),
        }
    }
}

impl<T> fmt::Debug for LinkSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LinkSender")
            .field("next_seq", &self.next_seq.load(Ordering::Relaxed))
            .field("severed", &self.shared.severed.load(Ordering::Relaxed))
            .finish()
    }
}

/// Receiving half of a link.
pub struct LinkReceiver<T> {
    shared: Arc<LinkShared<T>>,
    rx: Receiver<(Instant, u64, T)>,
}

impl<T> fmt::Debug for LinkReceiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LinkReceiver")
            .field("severed", &self.shared.severed.load(Ordering::Relaxed))
            .finish()
    }
}

/// Creates a link with the given delay model.
pub fn link<T: Clone + Send + 'static>(config: LinkConfig) -> (LinkSender<T>, LinkReceiver<T>) {
    let (tx, rx) = crossbeam_channel::unbounded();
    let shared = Arc::new(LinkShared {
        severed: AtomicBool::new(false),
        retained: Mutex::new(VecDeque::new()),
    });
    let seed = config.seed;
    (
        LinkSender {
            shared: shared.clone(),
            tx,
            next_seq: Arc::new(AtomicU64::new(0)),
            last_due: Arc::new(Mutex::new(Instant::now())),
            config,
            rng: Arc::new(Mutex::new(DetRng::seed_from(seed))),
        },
        LinkReceiver { shared, rx },
    )
}

impl<T: Clone + Send + 'static> LinkSender<T> {
    fn due_time(&self) -> Instant {
        let mut delay = self.config.delay.as_secs_f64();
        if self.config.jitter > 0.0 {
            let f = 1.0 + self.config.jitter * (2.0 * self.rng.lock().next_f64() - 1.0);
            delay *= f;
        }
        let due = Instant::now() + Duration::from_secs_f64(delay.max(0.0));
        // FIFO: a message never arrives before its predecessor.
        let mut last = self.last_due.lock();
        let due = due.max(*last);
        *last = due;
        due
    }

    /// Sends a message; returns its link sequence number.
    ///
    /// The message is retained for replay until acknowledged via
    /// [`LinkSender::ack_upto`].
    ///
    /// # Errors
    ///
    /// [`LinkError::Disconnected`] while the link is severed or the
    /// receiver is gone.
    pub fn send(&self, msg: T) -> Result<u64, LinkError> {
        if self.shared.severed.load(Ordering::Acquire) {
            return Err(LinkError::Disconnected);
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        {
            let mut retained = self.shared.retained.lock();
            retained.push_back((seq, msg.clone()));
        }
        let due = self.due_time();
        self.tx.send((due, seq, msg)).map_err(|_| LinkError::Disconnected)?;
        Ok(seq)
    }

    /// Re-delivers every retained message with sequence `>= from`, in
    /// order. Used when the downstream recovers from a crash.
    pub fn replay_from(&self, from: u64) {
        let to_replay: Vec<(u64, T)> = {
            let retained = self.shared.retained.lock();
            retained.iter().filter(|(s, _)| *s >= from).cloned().collect()
        };
        for (seq, msg) in to_replay {
            let due = self.due_time();
            let _ = self.tx.send((due, seq, msg));
        }
    }

    /// Drops retained messages with sequence `< upto` — the downstream
    /// confirmed it will never need them again (paper's control message 5).
    pub fn ack_upto(&self, upto: u64) {
        let mut retained = self.shared.retained.lock();
        while retained.front().map(|(s, _)| *s < upto).unwrap_or(false) {
            retained.pop_front();
        }
    }

    /// Number of messages currently retained for replay.
    pub fn retained_len(&self) -> usize {
        self.shared.retained.lock().len()
    }

    /// Total messages ever sent.
    pub fn sent(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Severs the link (failure injection): subsequent sends fail.
    pub fn sever(&self) {
        self.shared.severed.store(true, Ordering::Release);
    }

    /// Heals a severed link.
    pub fn heal(&self) {
        self.shared.severed.store(false, Ordering::Release);
    }

    /// Whether the link is currently severed.
    pub fn is_severed(&self) -> bool {
        self.shared.severed.load(Ordering::Acquire)
    }
}

impl<T: Clone + Send + 'static> LinkReceiver<T> {
    fn deliver(&self, due: Instant, seq: u64, msg: T) -> (u64, T) {
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        (seq, msg)
    }

    /// Blocks for the next message; returns `(link_seq, message)`.
    ///
    /// # Errors
    ///
    /// [`LinkError::Disconnected`] when every sender is gone.
    pub fn recv(&self) -> Result<(u64, T), LinkError> {
        let (due, seq, msg) = self.rx.recv().map_err(|_| LinkError::Disconnected)?;
        Ok(self.deliver(due, seq, msg))
    }

    /// Non-blocking receive. `Ok(None)` when no message is queued (a taken
    /// message still sleeps out its remaining propagation delay).
    ///
    /// # Errors
    ///
    /// [`LinkError::Disconnected`] when every sender is gone.
    pub fn try_recv(&self) -> Result<Option<(u64, T)>, LinkError> {
        match self.rx.try_recv() {
            Ok((due, seq, msg)) => Ok(Some(self.deliver(due, seq, msg))),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(LinkError::Disconnected),
        }
    }

    /// Blocking receive with a timeout.
    ///
    /// # Errors
    ///
    /// [`LinkError::Timeout`] on timeout, [`LinkError::Disconnected`] when
    /// every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(u64, T), LinkError> {
        match self.rx.recv_timeout(timeout) {
            Ok((due, seq, msg)) => Ok(self.deliver(due, seq, msg)),
            Err(RecvTimeoutError::Timeout) => Err(LinkError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(LinkError::Disconnected),
        }
    }

    /// Drains and discards everything currently queued (crash simulation:
    /// in-flight messages to a dead process are lost).
    pub fn drain(&self) -> usize {
        let mut n = 0;
        while self.rx.try_recv().is_ok() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_delivery_with_sequence_numbers() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        for i in 0..10 {
            assert_eq!(tx.send(i).unwrap(), u64::from(i));
        }
        for i in 0..10u8 {
            assert_eq!(rx.recv().unwrap(), (u64::from(i), i));
        }
    }

    #[test]
    fn delay_is_applied() {
        let (tx, rx) = link::<u8>(LinkConfig::with_delay(Duration::from_millis(5)));
        let start = Instant::now();
        tx.send(1).unwrap();
        let _ = rx.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn jittered_delay_preserves_fifo() {
        let cfg = LinkConfig { delay: Duration::from_micros(500), jitter: 0.9, seed: 42 };
        let (tx, rx) = link::<u32>(cfg);
        for i in 0..50 {
            tx.send(i).unwrap();
        }
        let mut prev = None;
        for _ in 0..50 {
            let (seq, _) = rx.recv().unwrap();
            if let Some(p) = prev {
                assert!(seq > p, "FIFO violated: {seq} after {p}");
            }
            prev = Some(seq);
        }
    }

    #[test]
    fn replay_redelivers_retained_suffix() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        for _ in 0..5 {
            rx.recv().unwrap();
        }
        tx.replay_from(2);
        assert_eq!(rx.recv().unwrap(), (2, 2));
        assert_eq!(rx.recv().unwrap(), (3, 3));
        assert_eq!(rx.recv().unwrap(), (4, 4));
    }

    #[test]
    fn ack_trims_retention() {
        let (tx, _rx) = link::<u8>(LinkConfig::instant());
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.retained_len(), 10);
        tx.ack_upto(7);
        assert_eq!(tx.retained_len(), 3);
    }

    #[test]
    fn severed_link_rejects_sends_until_healed() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        tx.send(1).unwrap();
        tx.sever();
        assert!(tx.is_severed());
        assert_eq!(tx.send(2).unwrap_err(), LinkError::Disconnected);
        tx.heal();
        tx.send(3).unwrap();
        assert_eq!(rx.recv().unwrap().1, 1);
        assert_eq!(rx.recv().unwrap().1, 3);
    }

    #[test]
    fn try_recv_and_timeout() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        assert_eq!(rx.try_recv().unwrap(), None);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)).unwrap_err(), LinkError::Timeout);
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv().unwrap(), Some((0, 9)));
    }

    #[test]
    fn disconnect_when_sender_dropped() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        drop(tx);
        assert_eq!(rx.recv().unwrap_err(), LinkError::Disconnected);
    }

    #[test]
    fn drain_discards_queued_messages() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.drain(), 4);
        assert_eq!(rx.try_recv().unwrap(), None);
    }

    #[test]
    fn cloned_sender_shares_sequence_space() {
        let (tx, rx) = link::<u8>(LinkConfig::instant());
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(tx.sent(), 2);
        assert_eq!(rx.recv().unwrap(), (0, 1));
        assert_eq!(rx.recv().unwrap(), (1, 2));
    }
}

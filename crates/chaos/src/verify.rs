//! Cross-checks between the supervisor's recovery timeline and the
//! metrics registry.
//!
//! The engine records every supervised restart twice: as a
//! [`RecoveryEvent`] in the supervisor's event list and as a
//! `recovery.restarts` counter bump in the shared metrics registry. A
//! chaos run that trusts its own assertions should verify the two
//! accounts agree — a mismatch means either the supervisor restarted a
//! node without metering it or a counter was bumped for a restart that
//! never happened, both of which would silently skew any dashboard built
//! on the registry.

use std::collections::HashMap;

use streammine_core::RecoveryEvent;
use streammine_obs::FaultKind as TimelineFaultKind;
use streammine_obs::{
    JournalEvent, JournalKind, Labels, RecoveryTimeline, RegistrySnapshot, Tracer,
};
use streammine_sketch::ErrorBound;

use crate::proc_plan::ProcFaultPlan;

/// Checks that the registry's recovery counters match the supervisor's
/// event trail and that the journal's backpressure episodes reconcile
/// with the registry:
///
/// * `recovery.restarts{op}` equals the number of [`RecoveryEvent`]s for
///   that operator — no more, no fewer;
/// * every restarted operator issued at least one upstream
///   `replay.requests{op}` (a restart without a replay request would mean
///   recovery skipped the paper's upstream-replay step);
/// * per operator, journal `BackpressureResume` records never outnumber
///   stall entries (`BackpressureStall` + `SpecCapHit`) — a resume
///   without a stall is impossible;
/// * per operator, the `backpressure.stalls{op}` counter is at least the
///   journal's stall-entry count (the counter is bumped exactly when a
///   stall record is written; the ring journal may have evicted old
///   records, but can never hold *more* stalls than were metered).
///
/// Strict stall == resume equality is deliberately not enforced here: a
/// node crashed mid-stall loses its volatile stall state and never writes
/// the matching resume, which is correct behavior under chaos.
///
/// # Errors
///
/// Returns a description of the first mismatch found.
pub fn verify_recovery_counters(
    snap: &RegistrySnapshot,
    events: &[RecoveryEvent],
    journal: &[JournalEvent],
) -> Result<(), String> {
    let mut per_op: HashMap<u32, u64> = HashMap::new();
    for ev in events {
        *per_op.entry(ev.op.index()).or_insert(0) += 1;
    }
    for (&op, &expected) in &per_op {
        let counted = snap.counter("recovery.restarts", Labels::op(op)).unwrap_or(0);
        if counted != expected {
            return Err(format!(
                "op{op}: registry counted {counted} recovery.restarts, \
                 supervisor recorded {expected} events"
            ));
        }
        let replays = snap.counter("replay.requests", Labels::op(op)).unwrap_or(0);
        if replays < expected {
            return Err(format!(
                "op{op}: only {replays} replay.requests for {expected} supervised restarts"
            ));
        }
    }
    // The registry must not claim restarts the supervisor never saw.
    for sample in &snap.samples {
        if sample.name != "recovery.restarts" {
            continue;
        }
        let op = sample.labels.op.unwrap_or(u32::MAX);
        if !per_op.contains_key(&op) {
            return Err(format!("registry has recovery.restarts for op{op} with no events"));
        }
    }
    // Backpressure reconciliation: stall entries vs resumes vs counters.
    let mut stalls: HashMap<u32, u64> = HashMap::new();
    let mut resumes: HashMap<u32, u64> = HashMap::new();
    for ev in journal {
        let Some(op) = ev.op else { continue };
        match ev.kind {
            JournalKind::BackpressureStall { .. } | JournalKind::SpecCapHit { .. } => {
                *stalls.entry(op).or_insert(0) += 1;
            }
            JournalKind::BackpressureResume { .. } => {
                *resumes.entry(op).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    for (&op, &resumed) in &resumes {
        let stalled = stalls.get(&op).copied().unwrap_or(0);
        if resumed > stalled {
            return Err(format!(
                "op{op}: journal has {resumed} backpressure resumes but only {stalled} stall \
                 entries"
            ));
        }
    }
    for (&op, &stalled) in &stalls {
        let counted = snap.counter("backpressure.stalls", Labels::op(op)).unwrap_or(0);
        if counted < stalled {
            return Err(format!(
                "op{op}: journal has {stalled} stall entries but backpressure.stalls counted \
                 only {counted}"
            ));
        }
    }
    Ok(())
}

/// Reconciles a distributed chaos run's recovery timelines with the
/// fault schedule that produced them and with the cluster-level metrics
/// the telemetry plane aggregated:
///
/// * every [`RecoveryTimeline`] has monotonically ordered phases
///   (detect ≤ fence ≤ respawn ≤ handshake ≤ first output ≤ drain);
/// * crash-kind timelines never outnumber the plan's [`kill_count`] — a
///   timeline per SIGKILL the monitor *observed*. Fewer is tolerated: a
///   kill injected during the quiesce tail can land after the monitor
///   stopped watching, so the victim dies unobserved and no timeline is
///   reconstructed. The timeline/counter cross-checks below still hold
///   for everything that was observed;
/// * timeline kinds agree with the launcher's crash/expiry counters, and
///   their total equals the restart count;
/// * the cluster snapshot's launcher-side counters
///   (`control.crash_detected`, `control.lease_expired`,
///   `recovery.restarts`) say the same thing;
/// * the worker-labeled `recovery.restarts{worker=w}` series synthesized
///   from telemetry incarnations sum to the restart total — a worker
///   restart that never reported telemetry would undercount here.
///
/// [`kill_count`]: ProcFaultPlan::kill_count
///
/// # Errors
///
/// Returns a description of the first mismatch found.
pub fn verify_cluster_recovery(
    plan: &ProcFaultPlan,
    timelines: &[RecoveryTimeline],
    crashes_detected: u64,
    leases_expired: u64,
    restarts: u64,
    cluster: &RegistrySnapshot,
) -> Result<(), String> {
    for t in timelines {
        if !t.monotonic() {
            return Err(format!(
                "w{}#{}: non-monotonic recovery timeline: {}",
                t.worker,
                t.incarnation,
                t.to_json()
            ));
        }
    }
    let crash_timelines =
        timelines.iter().filter(|t| t.kind == TimelineFaultKind::Crash).count() as u64;
    let lease_timelines = timelines.len() as u64 - crash_timelines;
    if crash_timelines > plan.kill_count() as u64 {
        return Err(format!(
            "plan injected {} kills but {} crash timelines were reconstructed",
            plan.kill_count(),
            crash_timelines
        ));
    }
    if crash_timelines != crashes_detected {
        return Err(format!(
            "{crash_timelines} crash timelines vs {crashes_detected} crashes detected"
        ));
    }
    if lease_timelines != leases_expired {
        return Err(format!(
            "{lease_timelines} lease-expiry timelines vs {leases_expired} leases expired"
        ));
    }
    if timelines.len() as u64 != restarts {
        return Err(format!("{} timelines for {restarts} restarts", timelines.len()));
    }
    for (name, expected) in [
        ("control.crash_detected", crashes_detected),
        ("control.lease_expired", leases_expired),
        ("recovery.restarts", restarts),
    ] {
        let counted = cluster.counter(name, Labels::NONE).unwrap_or(0);
        if counted != expected {
            return Err(format!("cluster {name} counted {counted}, launcher saw {expected}"));
        }
    }
    let telemetry_restarts: u64 = cluster
        .samples
        .iter()
        .filter(|s| s.name == "recovery.restarts" && s.labels.worker.is_some())
        .filter_map(|s| cluster.counter("recovery.restarts", s.labels))
        .sum();
    if telemetry_restarts != restarts {
        return Err(format!(
            "worker-labeled recovery.restarts sum to {telemetry_restarts}, launcher saw \
             {restarts} — a restarted incarnation never reported telemetry"
        ));
    }
    Ok(())
}

/// Outcome of a bounded-divergence check: the measured worst-case
/// deviation of an approximate run from its fault-free baseline, and how
/// much of the `ε·N` allowance that run left unspent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivergenceReport {
    /// Largest per-key estimate deviation observed.
    pub max_deviation: u64,
    /// The allowance `⌊ε·delivered⌋` the bound granted.
    pub allowed: u64,
    /// `allowed - max_deviation` — the error budget left over.
    pub remaining: u64,
}

/// Verifies an approximate-recovery run against its fault-free baseline
/// under the declared [`ErrorBound`]: the acceptance bar of the
/// divergence-bounded chaos grid.
///
/// `baseline[i]` and `recovered[i]` are the two runs' count-min
/// estimates for the same key; `delivered` is the fault-free run's
/// delivered-event count (the `N` of the `ε·N` allowance). Two
/// invariants are enforced:
///
/// * recovered estimates never *exceed* the baseline — losing updates
///   can only lower a count-min estimate, so an excess means the runs
///   diverged for a reason the budget does not cover;
/// * the worst per-key deficit stays within `⌊ε·delivered⌋`.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn verify_bounded_divergence(
    bound: ErrorBound,
    delivered: u64,
    baseline: &[u64],
    recovered: &[u64],
) -> Result<DivergenceReport, String> {
    if baseline.len() != recovered.len() {
        return Err(format!(
            "estimate vectors disagree: {} baseline keys vs {} recovered",
            baseline.len(),
            recovered.len()
        ));
    }
    let allowed = bound.allowed_loss(delivered);
    let mut max_deviation = 0u64;
    for (key, (&b, &r)) in baseline.iter().zip(recovered).enumerate() {
        if r > b {
            return Err(format!(
                "key {key}: recovered estimate {r} exceeds baseline {b} — update loss can only \
                 lower a count-min estimate"
            ));
        }
        max_deviation = max_deviation.max(b - r);
    }
    if max_deviation > allowed {
        return Err(format!(
            "measured deviation {max_deviation} exceeds the declared allowance {allowed} \
             (ε·N with N={delivered})"
        ));
    }
    Ok(DivergenceReport { max_deviation, allowed, remaining: allowed - max_deviation })
}

/// Checks the tracer's rollback attribution is complete and internally
/// consistent — the acceptance bar for a traced chaos run:
///
/// * every rollback record names an originating determinant that is a
///   retained span (the tracer never attributes a cascade to a span it
///   dropped or invented);
/// * the determinant is the rolled-back span itself or one of its
///   transitive dependencies (attribution never points sideways);
/// * the invalidated set is non-empty and contains the rolled-back span
///   (a rollback always invalidates at least its own work);
/// * every invalidated span is retained and belongs to the same trace.
///
/// # Errors
///
/// Returns a description of the first inconsistency found.
pub fn verify_rollback_traces(tracer: &Tracer) -> Result<(), String> {
    let spans: HashMap<u64, _> = tracer.spans().into_iter().map(|s| (s.span_id, s)).collect();
    for (i, rb) in tracer.rollbacks().iter().enumerate() {
        let span = spans
            .get(&rb.span_id)
            .ok_or_else(|| format!("rollback {i}: rolled-back span {} not retained", rb.span_id))?;
        let det = spans.get(&rb.determinant).ok_or_else(|| {
            format!("rollback {i}: determinant span {} not retained", rb.determinant)
        })?;
        if rb.determinant != rb.span_id && !span.deps.contains(&rb.determinant) {
            return Err(format!(
                "rollback {i}: determinant op{}#{} is not among the dependencies of op{}#{}",
                det.op, det.serial, span.op, span.serial
            ));
        }
        if rb.invalidated.is_empty() {
            return Err(format!("rollback {i}: empty invalidated set"));
        }
        if !rb.invalidated.contains(&rb.span_id) {
            return Err(format!("rollback {i}: invalidated set omits the rolled-back span itself"));
        }
        for inv in &rb.invalidated {
            let s = spans
                .get(inv)
                .ok_or_else(|| format!("rollback {i}: invalidated span {inv} not retained"))?;
            if s.trace_id != rb.trace_id {
                return Err(format!(
                    "rollback {i}: invalidated span op{}#{} belongs to trace {} not {}",
                    s.op, s.serial, s.trace_id, rb.trace_id
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use streammine_common::ids::OperatorId;
    use streammine_obs::Registry;

    fn event(op: u32, attempt: u32) -> RecoveryEvent {
        RecoveryEvent { op: OperatorId::new(op), attempt, backoff: Duration::from_millis(1) }
    }

    #[test]
    fn matching_counters_pass() {
        let r = Registry::new();
        r.counter("recovery.restarts", Labels::op(1)).add(2);
        r.counter("replay.requests", Labels::op(1)).add(2);
        let events = vec![event(1, 1), event(1, 2)];
        assert!(verify_recovery_counters(&r.snapshot(), &events, &[]).is_ok());
    }

    #[test]
    fn undercounted_restarts_fail() {
        let r = Registry::new();
        r.counter("recovery.restarts", Labels::op(1)).incr();
        r.counter("replay.requests", Labels::op(1)).incr();
        let events = vec![event(1, 1), event(1, 2)];
        let err = verify_recovery_counters(&r.snapshot(), &events, &[]).unwrap_err();
        assert!(err.contains("registry counted 1"), "{err}");
    }

    #[test]
    fn missing_replay_requests_fail() {
        let r = Registry::new();
        r.counter("recovery.restarts", Labels::op(0)).incr();
        let events = vec![event(0, 1)];
        let err = verify_recovery_counters(&r.snapshot(), &events, &[]).unwrap_err();
        assert!(err.contains("replay.requests"), "{err}");
    }

    #[test]
    fn phantom_registry_restarts_fail() {
        let r = Registry::new();
        r.counter("recovery.restarts", Labels::op(3)).incr();
        let err = verify_recovery_counters(&r.snapshot(), &[], &[]).unwrap_err();
        assert!(err.contains("no events"), "{err}");
    }

    fn journal_events(op: u32, kinds: Vec<JournalKind>) -> Vec<JournalEvent> {
        let j = streammine_obs::Journal::new();
        for kind in kinds {
            j.record(Some(op), kind);
        }
        j.events()
    }

    #[test]
    fn reconciled_backpressure_episodes_pass() {
        let r = Registry::new();
        r.counter("backpressure.stalls", Labels::op(2)).add(2);
        let journal = journal_events(
            2,
            vec![
                JournalKind::BackpressureStall { edge: 0 },
                JournalKind::BackpressureResume { stall_us: 17 },
                JournalKind::SpecCapHit { open: 8, retained: 64 },
            ],
        );
        assert!(verify_recovery_counters(&r.snapshot(), &[], &journal).is_ok());
    }

    #[test]
    fn resume_without_stall_fails() {
        let r = Registry::new();
        let journal = journal_events(1, vec![JournalKind::BackpressureResume { stall_us: 5 }]);
        let err = verify_recovery_counters(&r.snapshot(), &[], &journal).unwrap_err();
        assert!(err.contains("1 backpressure resumes"), "{err}");
    }

    #[test]
    fn unmetered_stall_records_fail() {
        let r = Registry::new();
        // Journal says a stall happened but the counter never moved.
        let journal = journal_events(0, vec![JournalKind::BackpressureStall { edge: 1 }]);
        let err = verify_recovery_counters(&r.snapshot(), &[], &journal).unwrap_err();
        assert!(err.contains("counted only 0"), "{err}");
    }

    fn timeline(worker: u32, kind: TimelineFaultKind) -> RecoveryTimeline {
        RecoveryTimeline {
            worker,
            incarnation: 1,
            kind,
            mode: streammine_obs::RecoveryModeTag::Precise,
            detect_us: 100,
            fence_us: 150,
            respawn_us: 400,
            handshake_us: Some(900),
            first_output_us: Some(1_500),
            drain_us: Some(9_000),
        }
    }

    fn cluster_snapshot(
        crashes: u64,
        expiries: u64,
        per_worker: &[(u32, u64)],
    ) -> RegistrySnapshot {
        let r = Registry::new();
        r.counter("control.crash_detected", Labels::NONE).add(crashes);
        r.counter("control.lease_expired", Labels::NONE).add(expiries);
        r.counter("recovery.restarts", Labels::NONE).add(crashes + expiries);
        for &(w, n) in per_worker {
            r.counter("recovery.restarts", Labels::NONE.with_worker(w)).add(n);
        }
        r.snapshot()
    }

    fn kill_plan(kills: usize) -> ProcFaultPlan {
        ProcFaultPlan::scripted(
            (0..kills)
                .map(|i| crate::ProcFaultEvent {
                    step: i as u64 * 20,
                    kind: crate::ProcFaultKind::KillWorker { worker: i as u32 },
                })
                .collect(),
        )
    }

    #[test]
    fn reconciled_cluster_recovery_passes() {
        let plan = kill_plan(2);
        let timelines = vec![
            timeline(0, TimelineFaultKind::Crash),
            timeline(1, TimelineFaultKind::Crash),
            timeline(2, TimelineFaultKind::LeaseExpiry),
        ];
        let snap = cluster_snapshot(2, 1, &[(0, 1), (1, 1), (2, 1)]);
        assert!(verify_cluster_recovery(&plan, &timelines, 2, 1, 3, &snap).is_ok());
    }

    #[test]
    fn non_monotonic_timeline_fails() {
        let mut t = timeline(0, TimelineFaultKind::Crash);
        t.fence_us = 50; // before detect
        let snap = cluster_snapshot(1, 0, &[(0, 1)]);
        let err = verify_cluster_recovery(&kill_plan(1), &[t], 1, 0, 1, &snap).unwrap_err();
        assert!(err.contains("non-monotonic"), "{err}");
    }

    #[test]
    fn missing_crash_timeline_fails() {
        // The monitor counted two crashes but only one timeline survived:
        // an observed recovery went unrecorded, which tolerance for
        // *unobserved* quiesce-tail kills must not excuse.
        let snap = cluster_snapshot(2, 0, &[(0, 2)]);
        let t = vec![timeline(0, TimelineFaultKind::Crash)];
        let err = verify_cluster_recovery(&kill_plan(2), &t, 2, 0, 2, &snap).unwrap_err();
        assert!(err.contains("crashes detected"), "{err}");
    }

    #[test]
    fn quiesce_tail_kill_without_timeline_is_tolerated() {
        // Two kills injected, but the second landed during the quiesce
        // tail: the monitor had stopped watching, so nothing detected or
        // restarted the victim. One coherent timeline + counters at 1
        // must reconcile against the 2-kill plan.
        let plan = kill_plan(2);
        let t = vec![timeline(0, TimelineFaultKind::Crash)];
        let snap = cluster_snapshot(1, 0, &[(0, 1)]);
        assert!(verify_cluster_recovery(&plan, &t, 1, 0, 1, &snap).is_ok());
    }

    #[test]
    fn excess_crash_timelines_fail() {
        let plan = kill_plan(1);
        let t = vec![timeline(0, TimelineFaultKind::Crash), timeline(1, TimelineFaultKind::Crash)];
        let snap = cluster_snapshot(2, 0, &[(0, 1), (1, 1)]);
        let err = verify_cluster_recovery(&plan, &t, 2, 0, 2, &snap).unwrap_err();
        assert!(err.contains("injected 1 kills"), "{err}");
    }

    #[test]
    fn divergence_within_bound_passes_with_report() {
        let bound = ErrorBound::new(0.01, 0.05);
        // N = 1000 → allowance 10. Worst deficit below is 7.
        let baseline = vec![40, 55, 60];
        let recovered = vec![40, 48, 57];
        let rep = verify_bounded_divergence(bound, 1000, &baseline, &recovered).unwrap();
        assert_eq!(rep, DivergenceReport { max_deviation: 7, allowed: 10, remaining: 3 });
    }

    #[test]
    fn divergence_beyond_bound_fails() {
        let bound = ErrorBound::new(0.01, 0.05);
        let err = verify_bounded_divergence(bound, 1000, &[50], &[39]).unwrap_err();
        assert!(err.contains("exceeds the declared allowance 10"), "{err}");
    }

    #[test]
    fn raised_estimate_fails_regardless_of_budget() {
        let bound = ErrorBound::new(0.5, 0.05);
        let err = verify_bounded_divergence(bound, 1000, &[50], &[51]).unwrap_err();
        assert!(err.contains("can only lower"), "{err}");
    }

    #[test]
    fn mismatched_key_sets_fail() {
        let bound = ErrorBound::new(0.1, 0.05);
        let err = verify_bounded_divergence(bound, 100, &[1, 2], &[1]).unwrap_err();
        assert!(err.contains("disagree"), "{err}");
    }

    #[test]
    fn undercounted_worker_telemetry_fails() {
        let plan = kill_plan(2);
        let timelines =
            vec![timeline(0, TimelineFaultKind::Crash), timeline(1, TimelineFaultKind::Crash)];
        // Worker 1's replacement incarnation never reported telemetry.
        let snap = cluster_snapshot(2, 0, &[(0, 1)]);
        let err = verify_cluster_recovery(&plan, &timelines, 2, 0, 2, &snap).unwrap_err();
        assert!(err.contains("never reported telemetry"), "{err}");
    }

    #[test]
    fn consistent_rollback_traces_pass() {
        let t = Tracer::sampling(1);
        let trace = t.sample(9, 0).unwrap();
        let s0 = t.begin_span(trace, 0, 0, 1, 0);
        let _s1 = t.begin_span(trace, s0, 1, 1, 0);
        t.record_rollback(1, 1);
        assert!(verify_rollback_traces(&t).is_ok());
    }

    #[test]
    fn empty_tracer_passes_vacuously() {
        assert!(verify_rollback_traces(&Tracer::sampling(1)).is_ok());
    }
}

//! Cross-checks between the supervisor's recovery timeline and the
//! metrics registry.
//!
//! The engine records every supervised restart twice: as a
//! [`RecoveryEvent`] in the supervisor's event list and as a
//! `recovery.restarts` counter bump in the shared metrics registry. A
//! chaos run that trusts its own assertions should verify the two
//! accounts agree — a mismatch means either the supervisor restarted a
//! node without metering it or a counter was bumped for a restart that
//! never happened, both of which would silently skew any dashboard built
//! on the registry.

use std::collections::HashMap;

use streammine_core::RecoveryEvent;
use streammine_obs::{Labels, RegistrySnapshot};

/// Checks that the registry's recovery counters match the supervisor's
/// event trail:
///
/// * `recovery.restarts{op}` equals the number of [`RecoveryEvent`]s for
///   that operator — no more, no fewer;
/// * every restarted operator issued at least one upstream
///   `replay.requests{op}` (a restart without a replay request would mean
///   recovery skipped the paper's upstream-replay step).
///
/// # Errors
///
/// Returns a description of the first mismatch found.
pub fn verify_recovery_counters(
    snap: &RegistrySnapshot,
    events: &[RecoveryEvent],
) -> Result<(), String> {
    let mut per_op: HashMap<u32, u64> = HashMap::new();
    for ev in events {
        *per_op.entry(ev.op.index()).or_insert(0) += 1;
    }
    for (&op, &expected) in &per_op {
        let counted = snap.counter("recovery.restarts", Labels::op(op)).unwrap_or(0);
        if counted != expected {
            return Err(format!(
                "op{op}: registry counted {counted} recovery.restarts, \
                 supervisor recorded {expected} events"
            ));
        }
        let replays = snap.counter("replay.requests", Labels::op(op)).unwrap_or(0);
        if replays < expected {
            return Err(format!(
                "op{op}: only {replays} replay.requests for {expected} supervised restarts"
            ));
        }
    }
    // The registry must not claim restarts the supervisor never saw.
    for sample in &snap.samples {
        if sample.name != "recovery.restarts" {
            continue;
        }
        let op = sample.labels.op.unwrap_or(u32::MAX);
        if !per_op.contains_key(&op) {
            return Err(format!("registry has recovery.restarts for op{op} with no events"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use streammine_common::ids::OperatorId;
    use streammine_obs::Registry;

    fn event(op: u32, attempt: u32) -> RecoveryEvent {
        RecoveryEvent { op: OperatorId::new(op), attempt, backoff: Duration::from_millis(1) }
    }

    #[test]
    fn matching_counters_pass() {
        let r = Registry::new();
        r.counter("recovery.restarts", Labels::op(1)).add(2);
        r.counter("replay.requests", Labels::op(1)).add(2);
        let events = vec![event(1, 1), event(1, 2)];
        assert!(verify_recovery_counters(&r.snapshot(), &events).is_ok());
    }

    #[test]
    fn undercounted_restarts_fail() {
        let r = Registry::new();
        r.counter("recovery.restarts", Labels::op(1)).incr();
        r.counter("replay.requests", Labels::op(1)).incr();
        let events = vec![event(1, 1), event(1, 2)];
        let err = verify_recovery_counters(&r.snapshot(), &events).unwrap_err();
        assert!(err.contains("registry counted 1"), "{err}");
    }

    #[test]
    fn missing_replay_requests_fail() {
        let r = Registry::new();
        r.counter("recovery.restarts", Labels::op(0)).incr();
        let events = vec![event(0, 1)];
        let err = verify_recovery_counters(&r.snapshot(), &events).unwrap_err();
        assert!(err.contains("replay.requests"), "{err}");
    }

    #[test]
    fn phantom_registry_restarts_fail() {
        let r = Registry::new();
        r.counter("recovery.restarts", Labels::op(3)).incr();
        let err = verify_recovery_counters(&r.snapshot(), &[]).unwrap_err();
        assert!(err.contains("no events"), "{err}");
    }
}

//! Deterministic chaos harness.
//!
//! Fault-tolerance claims are only as good as the fault schedules they were
//! tested under. This crate turns fault injection into a *reproducible*
//! experiment: a [`FaultPlan`] is a pure value — scripted by hand or drawn
//! from a seeded RNG ([`FaultPlan::random`]) — and a [`FaultScheduler`]
//! injects its events step by step into any [`ChaosTarget`]. The same
//! `(seed, topology, steps)` triple always produces the same fault
//! timeline, so a failing run can be replayed exactly.
//!
//! Supported faults: node crashes (recovered by the engine's supervisor),
//! data-link sever/heal, control-link sever/heal (delayed acknowledgments),
//! transient storage write faults, and storage stall windows. Randomly
//! generated plans always close every sever / disk-fault window before the
//! end, so a run quiesces once the plan is exhausted.
//!
//! [`ChaosTarget`] is implemented for the engine's
//! [`Running`](streammine_core::Running) graph; the trait keeps this crate
//! decoupled so harnesses can also drive mock targets in unit tests.
//!
//! For the multi-process runtime, [`ProcFaultPlan`] draws schedules of
//! *real* faults — worker SIGKILLs, dropped listeners, one-way inbound
//! partitions, heartbeat suppression — against a
//! `streammine_core::dist::Cluster`.

#![warn(missing_docs)]

pub mod plan;
pub mod proc_plan;
pub mod scheduler;
mod target;
pub mod verify;

pub use plan::{FaultEvent, FaultKind, FaultPlan, Topology};
pub use proc_plan::{ProcFaultEvent, ProcFaultKind, ProcFaultPlan};
pub use scheduler::FaultScheduler;
pub use target::ChaosTarget;
pub use verify::{
    verify_bounded_divergence, verify_cluster_recovery, verify_recovery_counters,
    verify_rollback_traces, DivergenceReport,
};

//! Process-level fault plans for the distributed (multi-process) runtime.
//!
//! The in-process [`FaultPlan`](crate::FaultPlan) injects faults through
//! engine hooks; a [`ProcFaultPlan`] targets a
//! `streammine_core::dist::Cluster` instead, where faults are *real*:
//! SIGKILL of worker OS processes, dropped TCP listeners, one-way inbound
//! socket partitions, and heartbeat suppression (which makes a healthy
//! worker look dead to the control plane). Like its in-process sibling, a
//! plan is a pure value drawn from a seeded RNG, so a failing distributed
//! run can be replayed exactly.

use std::fmt;

use streammine_common::rng::DetRng;

/// One kind of injectable process-level fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcFaultKind {
    /// SIGKILL worker `worker`'s OS process. The control plane observes
    /// the exit, fences the dead incarnation, and respawns.
    KillWorker {
        /// Worker index.
        worker: u32,
    },
    /// Drop worker `worker`'s data listener for `millis` ms: new
    /// connections are refused and existing ones severed, so upstream
    /// senders reconnect with resend-from-ack.
    ListenerDrop {
        /// Worker index.
        worker: u32,
        /// Blackhole window length in milliseconds.
        millis: u64,
    },
    /// One-way partition: worker `worker` stops *delivering* frames that
    /// arrive on inbound edge `edge` for `millis` ms while its own output
    /// and heartbeats keep flowing.
    PartitionInbound {
        /// Worker index.
        worker: u32,
        /// Inbound edge id.
        edge: u32,
        /// Partition window length in milliseconds.
        millis: u64,
    },
    /// Suppress worker `worker`'s heartbeats for `millis` ms. If the
    /// window outlives the lease timeout the control plane must treat the
    /// silent-but-alive worker as failed and fence it before respawning.
    PauseBeats {
        /// Worker index.
        worker: u32,
        /// Suppression window length in milliseconds.
        millis: u64,
    },
}

impl fmt::Display for ProcFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcFaultKind::KillWorker { worker } => write!(f, "kill(w{worker})"),
            ProcFaultKind::ListenerDrop { worker, millis } => {
                write!(f, "listener-drop(w{worker}, {millis}ms)")
            }
            ProcFaultKind::PartitionInbound { worker, edge, millis } => {
                write!(f, "partition-in(w{worker}, e{edge}, {millis}ms)")
            }
            ProcFaultKind::PauseBeats { worker, millis } => {
                write!(f, "pause-beats(w{worker}, {millis}ms)")
            }
        }
    }
}

/// A process-level fault scheduled at a plan step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcFaultEvent {
    /// The step at (or after) which the fault fires.
    pub step: u64,
    /// What to inject.
    pub kind: ProcFaultKind,
}

impl fmt::Display for ProcFaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {}", self.step, self.kind)
    }
}

/// A reproducible process-level fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcFaultPlan {
    /// The generating seed (0 for scripted plans).
    pub seed: u64,
    /// The schedule, sorted by step.
    pub events: Vec<ProcFaultEvent>,
}

impl fmt::Display for ProcFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc-plan(seed={})", self.seed)?;
        for ev in &self.events {
            write!(f, " {ev}")?;
        }
        Ok(())
    }
}

/// Steps that must pass after any kill or beat-suppression before the next
/// one may fire — a respawned process needs time to re-handshake and replay
/// before the plan knocks the pipeline over again (the paper's
/// single-failure discipline, applied per recovery window).
const KILL_COOLDOWN: u64 = 10;

/// Longest window (ms) a listener drop or inbound partition stays open.
/// Short relative to the lease timeout so pure network faults do not
/// masquerade as process death.
const MAX_NET_WINDOW_MS: u64 = 120;

impl ProcFaultPlan {
    /// A hand-scripted plan. Events are sorted by step.
    pub fn scripted(mut events: Vec<ProcFaultEvent>) -> ProcFaultPlan {
        events.sort_by_key(|e| e.step);
        ProcFaultPlan { seed: 0, events }
    }

    /// Draws a random plan over `steps` steps against `workers` worker
    /// processes, where worker `w`'s inbound data edge is `w` (the linear
    /// chain layout `Cluster` uses).
    ///
    /// The same `(seed, steps, workers)` always yields the same plan.
    /// Invariants: kills and beat suppressions share one cooldown (one
    /// recovery in flight at a time), network windows are bounded by
    /// [`MAX_NET_WINDOW_MS`], and no event fires in the final
    /// `KILL_COOLDOWN` steps so the run can quiesce.
    pub fn random(seed: u64, steps: u64, workers: u32) -> ProcFaultPlan {
        let mut rng = DetRng::seed_from(seed ^ 0xD157_C4A5);
        let mut events = Vec::new();
        let mut next_disruption_ok = 2u64; // let the cluster boot first
        let quiesce_from = steps.saturating_sub(KILL_COOLDOWN);
        for step in 0..quiesce_from {
            // Roughly one fault every five steps — distributed recovery is
            // slower than in-process restarts, so plans are sparser.
            if !rng.next_bool(0.2) || workers == 0 {
                continue;
            }
            let worker = rng.next_below(u64::from(workers)) as u32;
            match rng.next_below(4) {
                0 if step >= next_disruption_ok => {
                    events
                        .push(ProcFaultEvent { step, kind: ProcFaultKind::KillWorker { worker } });
                    next_disruption_ok = step + KILL_COOLDOWN;
                }
                1 => {
                    let millis = 20 + rng.next_below(MAX_NET_WINDOW_MS - 20);
                    events.push(ProcFaultEvent {
                        step,
                        kind: ProcFaultKind::ListenerDrop { worker, millis },
                    });
                }
                2 => {
                    let millis = 20 + rng.next_below(MAX_NET_WINDOW_MS - 20);
                    events.push(ProcFaultEvent {
                        step,
                        kind: ProcFaultKind::PartitionInbound { worker, edge: worker, millis },
                    });
                }
                3 if step >= next_disruption_ok => {
                    // Long enough to overrun a 250 ms lease: forces the
                    // crash-vs-partition distinction to resolve as expiry.
                    let millis = 300 + rng.next_below(200);
                    events.push(ProcFaultEvent {
                        step,
                        kind: ProcFaultKind::PauseBeats { worker, millis },
                    });
                    next_disruption_ok = step + KILL_COOLDOWN;
                }
                _ => {}
            }
        }
        events.sort_by_key(|e| e.step);
        ProcFaultPlan { seed, events }
    }

    /// Number of kill events in the plan.
    pub fn kill_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, ProcFaultKind::KillWorker { .. })).count()
    }

    /// Number of events that force a restart (kills + lease-length beat
    /// suppressions).
    pub fn restart_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    ProcFaultKind::KillWorker { .. } | ProcFaultKind::PauseBeats { .. }
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_reproducible() {
        for seed in 0..32u64 {
            let a = ProcFaultPlan::random(seed, 40, 3);
            let b = ProcFaultPlan::random(seed, 40, 3);
            assert_eq!(a, b, "seed {seed} not reproducible");
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(ProcFaultPlan::random(1, 40, 3), ProcFaultPlan::random(2, 40, 3));
    }

    #[test]
    fn disruptions_respect_shared_cooldown() {
        for seed in 0..64u64 {
            let plan = ProcFaultPlan::random(seed, 80, 3);
            let disruptions: Vec<u64> = plan
                .events
                .iter()
                .filter(|e| {
                    matches!(
                        e.kind,
                        ProcFaultKind::KillWorker { .. } | ProcFaultKind::PauseBeats { .. }
                    )
                })
                .map(|e| e.step)
                .collect();
            for pair in disruptions.windows(2) {
                assert!(
                    pair[1] - pair[0] >= KILL_COOLDOWN,
                    "seed {seed}: disruptions at {} and {} too close",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn events_target_valid_workers_and_leave_quiesce_room() {
        for seed in 0..32u64 {
            let steps = 40;
            let plan = ProcFaultPlan::random(seed, steps, 3);
            let mut last = 0;
            for ev in &plan.events {
                assert!(ev.step >= last, "seed {seed}: events not sorted");
                last = ev.step;
                assert!(ev.step < steps - KILL_COOLDOWN, "seed {seed}: no quiesce room ({ev})");
                let (worker, window) = match ev.kind {
                    ProcFaultKind::KillWorker { worker } => (worker, None),
                    ProcFaultKind::ListenerDrop { worker, millis } => (worker, Some(millis)),
                    ProcFaultKind::PartitionInbound { worker, edge, millis } => {
                        assert_eq!(edge, worker, "seed {seed}: chain edge mismatch ({ev})");
                        (worker, Some(millis))
                    }
                    ProcFaultKind::PauseBeats { worker, .. } => (worker, None),
                };
                assert!(worker < 3, "seed {seed}: worker out of range ({ev})");
                if let Some(ms) = window {
                    assert!(ms <= MAX_NET_WINDOW_MS, "seed {seed}: window too long ({ev})");
                }
            }
        }
    }

    #[test]
    fn plans_hit_every_fault_kind_across_seeds() {
        let (mut kills, mut drops, mut partitions, mut pauses) = (0, 0, 0, 0);
        for seed in 0..24u64 {
            for ev in &ProcFaultPlan::random(seed, 60, 3).events {
                match ev.kind {
                    ProcFaultKind::KillWorker { .. } => kills += 1,
                    ProcFaultKind::ListenerDrop { .. } => drops += 1,
                    ProcFaultKind::PartitionInbound { .. } => partitions += 1,
                    ProcFaultKind::PauseBeats { .. } => pauses += 1,
                }
            }
        }
        assert!(kills > 0, "no kills across seeds");
        assert!(drops > 0, "no listener drops across seeds");
        assert!(partitions > 0, "no inbound partitions across seeds");
        assert!(pauses > 0, "no beat suppressions across seeds");
    }

    #[test]
    fn scripted_plans_sort_by_step() {
        let plan = ProcFaultPlan::scripted(vec![
            ProcFaultEvent { step: 9, kind: ProcFaultKind::KillWorker { worker: 1 } },
            ProcFaultEvent { step: 3, kind: ProcFaultKind::ListenerDrop { worker: 0, millis: 50 } },
        ]);
        assert_eq!(plan.events[0].step, 3);
        assert_eq!(plan.kill_count(), 1);
        assert_eq!(plan.restart_count(), 1);
    }
}

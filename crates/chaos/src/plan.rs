//! Fault plans: scripted or seeded-random fault schedules.

use std::fmt;

use streammine_common::rng::DetRng;

use crate::target::ChaosTarget;

/// One kind of injectable fault.
///
/// Probabilities are carried in permille (0–999) so plans stay `Eq` and
/// hashable — a fault plan is a *value* that can be compared, printed, and
/// replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Kill operator `op`; the supervisor restarts it from checkpoint +
    /// decision-log replay.
    CrashNode {
        /// Operator index.
        op: u32,
    },
    /// Sever the data link of edge `edge` (senders buffer + back off).
    SeverData {
        /// Edge index.
        edge: usize,
    },
    /// Heal the data link of edge `edge`.
    HealData {
        /// Edge index.
        edge: usize,
    },
    /// Sever the control link of edge `edge` — acknowledgments and replay
    /// requests are delayed until restored.
    DelayAcks {
        /// Edge index.
        edge: usize,
    },
    /// Restore the control link of edge `edge`.
    RestoreAcks {
        /// Edge index.
        edge: usize,
    },
    /// Make a fraction of `op`'s storage writes fail transiently.
    DiskFault {
        /// Operator index.
        op: u32,
        /// Failure probability in permille (0–999).
        permille: u16,
    },
    /// Clear `op`'s storage fault rate.
    DiskHeal {
        /// Operator index.
        op: u32,
    },
    /// Stall `op`'s storage writes for `millis` milliseconds.
    DiskStall {
        /// Operator index.
        op: u32,
        /// Stall window length in milliseconds.
        millis: u64,
    },
    /// Stall sink `sink`'s collector for `millis` milliseconds — the
    /// slow-consumer nemesis. The sink stops draining its link, the
    /// link's credits run dry, and backpressure propagates upstream.
    StallSink {
        /// Sink index.
        sink: usize,
        /// Stall window length in milliseconds.
        millis: u64,
    },
    /// Add `extra_ms` of propagation delay to every data delivery on
    /// edge `edge` for the next `window_ms` milliseconds (a congestion
    /// spike; FIFO order preserved).
    DelaySpike {
        /// Edge index.
        edge: usize,
        /// Extra per-message delay in milliseconds.
        extra_ms: u64,
        /// Spike window length in milliseconds.
        window_ms: u64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::CrashNode { op } => write!(f, "crash(op{op})"),
            FaultKind::SeverData { edge } => write!(f, "sever-data(e{edge})"),
            FaultKind::HealData { edge } => write!(f, "heal-data(e{edge})"),
            FaultKind::DelayAcks { edge } => write!(f, "delay-acks(e{edge})"),
            FaultKind::RestoreAcks { edge } => write!(f, "restore-acks(e{edge})"),
            FaultKind::DiskFault { op, permille } => {
                write!(f, "disk-fault(op{op}, {permille}‰)")
            }
            FaultKind::DiskHeal { op } => write!(f, "disk-heal(op{op})"),
            FaultKind::DiskStall { op, millis } => write!(f, "disk-stall(op{op}, {millis}ms)"),
            FaultKind::StallSink { sink, millis } => write!(f, "stall-sink(s{sink}, {millis}ms)"),
            FaultKind::DelaySpike { edge, extra_ms, window_ms } => {
                write!(f, "delay-spike(e{edge}, +{extra_ms}ms/{window_ms}ms)")
            }
        }
    }
}

/// A fault scheduled at a plan step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultEvent {
    /// The step at (or after) which the fault fires.
    pub step: u64,
    /// What to inject.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {}", self.step, self.kind)
    }
}

/// The shape of a target graph, for random plan generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Number of operators (crash candidates).
    pub operators: u32,
    /// Number of operator-to-operator edges (sever candidates).
    pub edges: usize,
    /// Operators with durable storage (disk-fault candidates).
    pub storage_ops: Vec<u32>,
    /// Number of sinks (slow-consumer stall candidates).
    pub sinks: usize,
}

impl Topology {
    /// Probes a live target for its shape.
    pub fn probe(target: &impl ChaosTarget) -> Topology {
        let operators = target.operator_count() as u32;
        let storage_ops = (0..operators).filter(|&op| target.has_storage(op)).collect();
        Topology { operators, edges: target.edge_count(), storage_ops, sinks: target.sink_count() }
    }
}

/// A reproducible fault schedule.
///
/// Equality of plans means equality of fault timelines; a plan generated
/// from a seed can always be regenerated from the same seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The generating seed (0 for scripted plans).
    pub seed: u64,
    /// The schedule, sorted by step.
    pub events: Vec<FaultEvent>,
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan(seed={})", self.seed)?;
        for ev in &self.events {
            write!(f, " {ev}")?;
        }
        Ok(())
    }
}

/// Steps that must pass after a crash before the next crash may fire
/// (gives the supervisor room to restart and replay to catch up).
const CRASH_COOLDOWN: u64 = 8;

/// Maximum length (in steps) a random sever / disk-fault window stays open.
const MAX_WINDOW: u64 = 6;

impl FaultPlan {
    /// A hand-scripted plan. Events are sorted by step.
    pub fn scripted(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.step);
        FaultPlan { seed: 0, events }
    }

    /// Draws a random plan over `steps` steps from `seed`.
    ///
    /// The same `(seed, steps, topology)` always yields the same plan.
    /// Invariants: consecutive crashes are separated by a cooldown, every
    /// sever / delay-acks / disk-fault window is closed by `steps` at the
    /// latest, and faults never target indices outside the topology.
    pub fn random(seed: u64, steps: u64, topo: &Topology) -> FaultPlan {
        let mut rng = DetRng::seed_from(seed ^ 0xC4A0_5EED);
        let mut events = Vec::new();
        let mut severed_data: Vec<Option<u64>> = vec![None; topo.edges];
        let mut severed_ctrl: Vec<Option<u64>> = vec![None; topo.edges];
        let mut disk_faulted: Vec<bool> = vec![false; topo.operators as usize];
        let mut next_crash_ok = 0u64;
        for step in 0..steps {
            // Close expired windows first so flapping links actually flap.
            for (edge, open) in severed_data.iter_mut().enumerate() {
                if open.map(|until| step >= until).unwrap_or(false) {
                    events.push(FaultEvent { step, kind: FaultKind::HealData { edge } });
                    *open = None;
                }
            }
            for (edge, open) in severed_ctrl.iter_mut().enumerate() {
                if open.map(|until| step >= until).unwrap_or(false) {
                    events.push(FaultEvent { step, kind: FaultKind::RestoreAcks { edge } });
                    *open = None;
                }
            }
            // Roughly one fault every four steps.
            if !rng.next_bool(0.25) {
                continue;
            }
            match rng.next_below(6) {
                0 if step >= next_crash_ok && topo.operators > 0 => {
                    let op = rng.next_below(u64::from(topo.operators)) as u32;
                    events.push(FaultEvent { step, kind: FaultKind::CrashNode { op } });
                    next_crash_ok = step + CRASH_COOLDOWN;
                }
                1 if topo.edges > 0 => {
                    let edge = rng.next_below(topo.edges as u64) as usize;
                    if severed_data[edge].is_none() {
                        let window = 1 + rng.next_below(MAX_WINDOW);
                        events.push(FaultEvent { step, kind: FaultKind::SeverData { edge } });
                        severed_data[edge] = Some((step + window).min(steps.saturating_sub(1)));
                    }
                }
                2 if topo.edges > 0 => {
                    let edge = rng.next_below(topo.edges as u64) as usize;
                    if severed_ctrl[edge].is_none() {
                        let window = 1 + rng.next_below(MAX_WINDOW);
                        events.push(FaultEvent { step, kind: FaultKind::DelayAcks { edge } });
                        severed_ctrl[edge] = Some((step + window).min(steps.saturating_sub(1)));
                    }
                }
                3 if !topo.storage_ops.is_empty() => {
                    let op =
                        topo.storage_ops[rng.next_below(topo.storage_ops.len() as u64) as usize];
                    if !disk_faulted[op as usize] {
                        let permille = 200 + rng.next_below(500) as u16;
                        events
                            .push(FaultEvent { step, kind: FaultKind::DiskFault { op, permille } });
                        disk_faulted[op as usize] = true;
                    }
                }
                4 if !topo.storage_ops.is_empty() => {
                    let op =
                        topo.storage_ops[rng.next_below(topo.storage_ops.len() as u64) as usize];
                    if disk_faulted[op as usize] {
                        events.push(FaultEvent { step, kind: FaultKind::DiskHeal { op } });
                        disk_faulted[op as usize] = false;
                    }
                }
                5 if !topo.storage_ops.is_empty() => {
                    let op =
                        topo.storage_ops[rng.next_below(topo.storage_ops.len() as u64) as usize];
                    let millis = 1 + rng.next_below(10);
                    events.push(FaultEvent { step, kind: FaultKind::DiskStall { op, millis } });
                }
                _ => {}
            }
        }
        // Close every window still open at the end of the plan.
        for (edge, open) in severed_data.iter().enumerate() {
            if open.is_some() {
                events.push(FaultEvent { step: steps, kind: FaultKind::HealData { edge } });
            }
        }
        for (edge, open) in severed_ctrl.iter().enumerate() {
            if open.is_some() {
                events.push(FaultEvent { step: steps, kind: FaultKind::RestoreAcks { edge } });
            }
        }
        for (op, faulted) in disk_faulted.iter().enumerate() {
            if *faulted {
                events
                    .push(FaultEvent { step: steps, kind: FaultKind::DiskHeal { op: op as u32 } });
            }
        }
        events.sort_by_key(|e| e.step);
        FaultPlan { seed, events }
    }

    /// Draws a random *network-nemesis* plan over `steps` steps: only
    /// link-layer faults — slow-consumer sink stalls, congestion delay
    /// spikes, asymmetric partitions (data severed while acks flow), and
    /// ack starvation (acks severed while data flows). No crashes and no
    /// storage faults, so the plan exercises the flow-control and
    /// retransmission machinery in isolation.
    ///
    /// The same `(seed, steps, topology)` always yields the same plan,
    /// and every sever window is closed by `steps` at the latest.
    pub fn random_network(seed: u64, steps: u64, topo: &Topology) -> FaultPlan {
        let mut rng = DetRng::seed_from(seed ^ 0x4E7E_514B);
        let mut events = Vec::new();
        let mut severed_data: Vec<Option<u64>> = vec![None; topo.edges];
        let mut severed_ctrl: Vec<Option<u64>> = vec![None; topo.edges];
        for step in 0..steps {
            for (edge, open) in severed_data.iter_mut().enumerate() {
                if open.map(|until| step >= until).unwrap_or(false) {
                    events.push(FaultEvent { step, kind: FaultKind::HealData { edge } });
                    *open = None;
                }
            }
            for (edge, open) in severed_ctrl.iter_mut().enumerate() {
                if open.map(|until| step >= until).unwrap_or(false) {
                    events.push(FaultEvent { step, kind: FaultKind::RestoreAcks { edge } });
                    *open = None;
                }
            }
            // Network turbulence is denser than the mixed plan's faults:
            // roughly one event every three steps.
            if !rng.next_bool(0.35) {
                continue;
            }
            match rng.next_below(4) {
                0 if topo.sinks > 0 => {
                    let sink = rng.next_below(topo.sinks as u64) as usize;
                    let millis = 1 + rng.next_below(8);
                    events.push(FaultEvent { step, kind: FaultKind::StallSink { sink, millis } });
                }
                1 if topo.edges > 0 => {
                    let edge = rng.next_below(topo.edges as u64) as usize;
                    let extra_ms = 1 + rng.next_below(5);
                    let window_ms = 1 + rng.next_below(8);
                    events.push(FaultEvent {
                        step,
                        kind: FaultKind::DelaySpike { edge, extra_ms, window_ms },
                    });
                }
                // Asymmetric partition: data path cut, control path alive.
                2 if topo.edges > 0 => {
                    let edge = rng.next_below(topo.edges as u64) as usize;
                    if severed_data[edge].is_none() {
                        let window = 1 + rng.next_below(MAX_WINDOW);
                        events.push(FaultEvent { step, kind: FaultKind::SeverData { edge } });
                        severed_data[edge] = Some((step + window).min(steps.saturating_sub(1)));
                    }
                }
                // Ack starvation: control path cut, data path alive.
                3 if topo.edges > 0 => {
                    let edge = rng.next_below(topo.edges as u64) as usize;
                    if severed_ctrl[edge].is_none() {
                        let window = 1 + rng.next_below(MAX_WINDOW);
                        events.push(FaultEvent { step, kind: FaultKind::DelayAcks { edge } });
                        severed_ctrl[edge] = Some((step + window).min(steps.saturating_sub(1)));
                    }
                }
                _ => {}
            }
        }
        for (edge, open) in severed_data.iter().enumerate() {
            if open.is_some() {
                events.push(FaultEvent { step: steps, kind: FaultKind::HealData { edge } });
            }
        }
        for (edge, open) in severed_ctrl.iter().enumerate() {
            if open.is_some() {
                events.push(FaultEvent { step: steps, kind: FaultKind::RestoreAcks { edge } });
            }
        }
        events.sort_by_key(|e| e.step);
        FaultPlan { seed, events }
    }

    /// Whether the plan leaves every sever / disk-fault window closed.
    pub fn windows_closed(&self) -> bool {
        let mut data = std::collections::HashSet::new();
        let mut ctrl = std::collections::HashSet::new();
        let mut disk = std::collections::HashSet::new();
        for ev in &self.events {
            match ev.kind {
                FaultKind::SeverData { edge } => {
                    data.insert(edge);
                }
                FaultKind::HealData { edge } => {
                    data.remove(&edge);
                }
                FaultKind::DelayAcks { edge } => {
                    ctrl.insert(edge);
                }
                FaultKind::RestoreAcks { edge } => {
                    ctrl.remove(&edge);
                }
                FaultKind::DiskFault { op, .. } => {
                    disk.insert(op);
                }
                FaultKind::DiskHeal { op } => {
                    disk.remove(&op);
                }
                _ => {}
            }
        }
        data.is_empty() && ctrl.is_empty() && disk.is_empty()
    }

    /// Number of crash events in the plan.
    pub fn crash_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, FaultKind::CrashNode { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology { operators: 3, edges: 2, storage_ops: vec![0, 1, 2], sinks: 1 }
    }

    #[test]
    fn random_plans_are_reproducible() {
        for seed in 0..32u64 {
            let a = FaultPlan::random(seed, 40, &topo());
            let b = FaultPlan::random(seed, 40, &topo());
            assert_eq!(a, b, "seed {seed} not reproducible");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::random(1, 40, &topo());
        let b = FaultPlan::random(2, 40, &topo());
        assert_ne!(a, b);
    }

    #[test]
    fn random_plans_close_all_windows() {
        for seed in 0..64u64 {
            let plan = FaultPlan::random(seed, 40, &topo());
            assert!(plan.windows_closed(), "seed {seed} leaves a window open: {plan}");
        }
    }

    #[test]
    fn crashes_respect_cooldown() {
        for seed in 0..64u64 {
            let plan = FaultPlan::random(seed, 60, &topo());
            let crashes: Vec<u64> = plan
                .events
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::CrashNode { .. }))
                .map(|e| e.step)
                .collect();
            for pair in crashes.windows(2) {
                assert!(
                    pair[1] - pair[0] >= CRASH_COOLDOWN,
                    "seed {seed}: crashes at {} and {} too close",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn events_are_sorted_and_in_range() {
        for seed in 0..32u64 {
            let t = topo();
            let plan = FaultPlan::random(seed, 40, &t);
            let mut last = 0;
            for ev in &plan.events {
                assert!(ev.step >= last);
                last = ev.step;
                match ev.kind {
                    FaultKind::CrashNode { op }
                    | FaultKind::DiskHeal { op }
                    | FaultKind::DiskStall { op, .. }
                    | FaultKind::DiskFault { op, .. } => assert!(op < t.operators),
                    FaultKind::SeverData { edge }
                    | FaultKind::HealData { edge }
                    | FaultKind::DelayAcks { edge }
                    | FaultKind::RestoreAcks { edge }
                    | FaultKind::DelaySpike { edge, .. } => assert!(edge < t.edges),
                    FaultKind::StallSink { sink, .. } => assert!(sink < t.sinks),
                }
            }
        }
    }

    #[test]
    fn network_plans_are_reproducible_and_network_only() {
        for seed in 0..32u64 {
            let a = FaultPlan::random_network(seed, 40, &topo());
            let b = FaultPlan::random_network(seed, 40, &topo());
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert!(a.windows_closed(), "seed {seed} leaves a window open: {a}");
            for ev in &a.events {
                assert!(
                    matches!(
                        ev.kind,
                        FaultKind::StallSink { .. }
                            | FaultKind::DelaySpike { .. }
                            | FaultKind::SeverData { .. }
                            | FaultKind::HealData { .. }
                            | FaultKind::DelayAcks { .. }
                            | FaultKind::RestoreAcks { .. }
                    ),
                    "seed {seed}: non-network fault {ev}"
                );
            }
        }
    }

    #[test]
    fn network_plans_hit_every_network_fault_kind_across_seeds() {
        let (mut stalls, mut spikes, mut partitions, mut starvations) = (0, 0, 0, 0);
        for seed in 0..16u64 {
            for ev in &FaultPlan::random_network(seed, 40, &topo()).events {
                match ev.kind {
                    FaultKind::StallSink { .. } => stalls += 1,
                    FaultKind::DelaySpike { .. } => spikes += 1,
                    FaultKind::SeverData { .. } => partitions += 1,
                    FaultKind::DelayAcks { .. } => starvations += 1,
                    _ => {}
                }
            }
        }
        assert!(stalls > 0, "no sink stalls across 16 seeds");
        assert!(spikes > 0, "no delay spikes across 16 seeds");
        assert!(partitions > 0, "no data partitions across 16 seeds");
        assert!(starvations > 0, "no ack starvation across 16 seeds");
    }

    #[test]
    fn scripted_plans_sort_by_step() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent { step: 9, kind: FaultKind::HealData { edge: 0 } },
            FaultEvent { step: 3, kind: FaultKind::SeverData { edge: 0 } },
        ]);
        assert_eq!(plan.events[0].step, 3);
        assert!(plan.windows_closed());
    }
}

//! Step-driven fault injection.

use std::time::Duration;

use crate::plan::{FaultEvent, FaultKind, FaultPlan};
use crate::target::ChaosTarget;

/// Walks a [`FaultPlan`] and injects each event into a [`ChaosTarget`]
/// as the driving loop advances through plan steps.
///
/// The scheduler is pull-based: the test (or example) driving the workload
/// calls [`advance`](FaultScheduler::advance) with its current step — e.g.
/// once per input batch — and every not-yet-injected event at or before
/// that step fires, in plan order. [`finish`](FaultScheduler::finish)
/// flushes the remainder (closing heal events live at `steps`, past the
/// last driven step). The injected timeline is recorded for reporting and
/// for asserting reproducibility across runs.
pub struct FaultScheduler {
    plan: FaultPlan,
    next: usize,
    injected: Vec<FaultEvent>,
}

impl FaultScheduler {
    /// Builds a scheduler over `plan`. Events fire in order of `step`.
    pub fn new(plan: FaultPlan) -> FaultScheduler {
        FaultScheduler { plan, next: 0, injected: Vec::new() }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injects every pending event with `event.step <= step` into `target`.
    /// Returns how many events fired.
    pub fn advance(&mut self, step: u64, target: &impl ChaosTarget) -> usize {
        let mut fired = 0;
        while self.next < self.plan.events.len() && self.plan.events[self.next].step <= step {
            let ev = self.plan.events[self.next];
            self.next += 1;
            inject(ev.kind, target);
            self.injected.push(ev);
            fired += 1;
        }
        fired
    }

    /// Injects every remaining event (heal/close events scheduled at the
    /// end of the plan). Returns how many events fired.
    pub fn finish(&mut self, target: &impl ChaosTarget) -> usize {
        self.advance(u64::MAX, target)
    }

    /// The events injected so far, in firing order.
    pub fn injected(&self) -> &[FaultEvent] {
        &self.injected
    }

    /// Whether every plan event has been injected.
    pub fn exhausted(&self) -> bool {
        self.next == self.plan.events.len()
    }
}

fn inject(kind: FaultKind, target: &impl ChaosTarget) {
    match kind {
        FaultKind::CrashNode { op } => target.crash_node(op),
        FaultKind::SeverData { edge } => target.sever_data(edge),
        FaultKind::HealData { edge } => target.heal_data(edge),
        FaultKind::DelayAcks { edge } => target.sever_ctrl(edge),
        FaultKind::RestoreAcks { edge } => target.heal_ctrl(edge),
        FaultKind::DiskFault { op, permille } => {
            target.set_storage_fault_rate(op, f64::from(permille) / 1000.0)
        }
        FaultKind::DiskHeal { op } => target.set_storage_fault_rate(op, 0.0),
        FaultKind::DiskStall { op, millis } => {
            target.stall_storage(op, Duration::from_millis(millis))
        }
        FaultKind::StallSink { sink, millis } => {
            target.stall_sink(sink, Duration::from_millis(millis))
        }
        FaultKind::DelaySpike { edge, extra_ms, window_ms } => target.delay_spike(
            edge,
            Duration::from_millis(extra_ms),
            Duration::from_millis(window_ms),
        ),
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    use super::*;
    use crate::plan::Topology;

    #[derive(Default)]
    struct MockTarget {
        calls: Mutex<Vec<String>>,
    }

    impl MockTarget {
        fn record(&self, call: String) {
            self.calls.lock().unwrap().push(call);
        }
    }

    impl ChaosTarget for MockTarget {
        fn operator_count(&self) -> usize {
            3
        }
        fn edge_count(&self) -> usize {
            2
        }
        fn has_storage(&self, _op: u32) -> bool {
            true
        }
        fn crash_node(&self, op: u32) {
            self.record(format!("crash {op}"));
        }
        fn sever_data(&self, edge: usize) {
            self.record(format!("sever-data {edge}"));
        }
        fn heal_data(&self, edge: usize) {
            self.record(format!("heal-data {edge}"));
        }
        fn sever_ctrl(&self, edge: usize) {
            self.record(format!("sever-ctrl {edge}"));
        }
        fn heal_ctrl(&self, edge: usize) {
            self.record(format!("heal-ctrl {edge}"));
        }
        fn set_storage_fault_rate(&self, op: u32, rate: f64) {
            self.record(format!("fault-rate {op} {rate:.3}"));
        }
        fn stall_storage(&self, op: u32, window: Duration) {
            self.record(format!("stall {op} {}ms", window.as_millis()));
        }
        fn sink_count(&self) -> usize {
            1
        }
        fn stall_sink(&self, sink: usize, window: Duration) {
            self.record(format!("stall-sink {sink} {}ms", window.as_millis()));
        }
        fn delay_spike(&self, edge: usize, extra: Duration, window: Duration) {
            self.record(format!(
                "delay-spike {edge} +{}ms/{}ms",
                extra.as_millis(),
                window.as_millis()
            ));
        }
    }

    #[test]
    fn advance_fires_events_up_to_step() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent { step: 2, kind: FaultKind::SeverData { edge: 0 } },
            FaultEvent { step: 5, kind: FaultKind::HealData { edge: 0 } },
            FaultEvent { step: 8, kind: FaultKind::CrashNode { op: 1 } },
        ]);
        let target = MockTarget::default();
        let mut sched = FaultScheduler::new(plan);
        assert_eq!(sched.advance(1, &target), 0);
        assert_eq!(sched.advance(5, &target), 2);
        assert!(!sched.exhausted());
        assert_eq!(sched.finish(&target), 1);
        assert!(sched.exhausted());
        let calls = target.calls.lock().unwrap();
        assert_eq!(*calls, vec!["sever-data 0", "heal-data 0", "crash 1"]);
    }

    #[test]
    fn kinds_map_to_target_hooks() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent { step: 0, kind: FaultKind::DiskFault { op: 2, permille: 250 } },
            FaultEvent { step: 0, kind: FaultKind::DiskStall { op: 2, millis: 7 } },
            FaultEvent { step: 0, kind: FaultKind::DelayAcks { edge: 1 } },
            FaultEvent { step: 0, kind: FaultKind::RestoreAcks { edge: 1 } },
            FaultEvent { step: 0, kind: FaultKind::DiskHeal { op: 2 } },
            FaultEvent { step: 0, kind: FaultKind::StallSink { sink: 0, millis: 3 } },
            FaultEvent {
                step: 0,
                kind: FaultKind::DelaySpike { edge: 1, extra_ms: 2, window_ms: 5 },
            },
        ]);
        let target = MockTarget::default();
        let mut sched = FaultScheduler::new(plan);
        sched.finish(&target);
        let calls = target.calls.lock().unwrap();
        assert!(calls.contains(&"fault-rate 2 0.250".to_string()));
        assert!(calls.contains(&"fault-rate 2 0.000".to_string()));
        assert!(calls.contains(&"stall 2 7ms".to_string()));
        assert!(calls.contains(&"sever-ctrl 1".to_string()));
        assert!(calls.contains(&"heal-ctrl 1".to_string()));
        assert!(calls.contains(&"stall-sink 0 3ms".to_string()));
        assert!(calls.contains(&"delay-spike 1 +2ms/5ms".to_string()));
    }

    #[test]
    fn injected_timeline_matches_plan_for_random_plans() {
        let topo = Topology { operators: 3, edges: 2, storage_ops: vec![0, 2], sinks: 1 };
        for seed in 0..16u64 {
            let plan = FaultPlan::random(seed, 30, &topo);
            let target = MockTarget::default();
            let mut sched = FaultScheduler::new(plan.clone());
            for step in 0..30 {
                sched.advance(step, &target);
            }
            sched.finish(&target);
            assert_eq!(sched.injected(), plan.events.as_slice());
        }
    }
}

//! The injection surface a chaos scheduler drives.

use std::time::Duration;

use streammine_common::ids::OperatorId;
use streammine_core::Running;

/// Anything faults can be injected into.
///
/// Operators are addressed by index (`0..operator_count`), edges by index
/// (`0..edge_count`). All hooks are best-effort: out-of-range operator
/// indices on storage hooks and crash requests are the implementor's
/// contract (the [`Running`] impl panics on unknown operators, mirroring
/// its own API).
pub trait ChaosTarget {
    /// Number of crashable operators.
    fn operator_count(&self) -> usize;
    /// Number of severable operator-to-operator edges.
    fn edge_count(&self) -> usize;
    /// Whether operator `op` has durable storage (log or checkpoints) that
    /// disk faults can target.
    fn has_storage(&self, op: u32) -> bool;
    /// Kills operator `op` (volatile state lost; recovery applies).
    fn crash_node(&self, op: u32);
    /// Severs the data link of edge `edge`.
    fn sever_data(&self, edge: usize);
    /// Heals the data link of edge `edge`.
    fn heal_data(&self, edge: usize);
    /// Severs the control (ack/replay) link of edge `edge`.
    fn sever_ctrl(&self, edge: usize);
    /// Heals the control link of edge `edge`.
    fn heal_ctrl(&self, edge: usize);
    /// Sets the transient write-fault probability of `op`'s storage.
    fn set_storage_fault_rate(&self, op: u32, rate: f64);
    /// Stalls `op`'s storage writes for the next `window`.
    fn stall_storage(&self, op: u32, window: Duration);
    /// Number of stallable sinks (slow-consumer targets). Defaults to 0
    /// for targets without sinks.
    fn sink_count(&self) -> usize {
        0
    }
    /// Stalls sink `sink`'s consumer for `window`: it stops draining its
    /// link, starving the upstream edge of delivery credits. Default no-op.
    fn stall_sink(&self, sink: usize, window: Duration) {
        let _ = (sink, window);
    }
    /// Adds `extra` propagation delay to data deliveries on edge `edge`
    /// for the next `window` (congestion spike). Default no-op.
    fn delay_spike(&self, edge: usize, extra: Duration, window: Duration) {
        let _ = (edge, extra, window);
    }
}

impl ChaosTarget for Running {
    fn operator_count(&self) -> usize {
        Running::operator_count(self)
    }

    fn edge_count(&self) -> usize {
        Running::edge_count(self)
    }

    fn has_storage(&self, op: u32) -> bool {
        let id = OperatorId::new(op);
        self.operator_log(id).is_some() || self.operator_checkpoints(id).is_some()
    }

    fn crash_node(&self, op: u32) {
        self.crash(OperatorId::new(op));
    }

    fn sever_data(&self, edge: usize) {
        self.sever_edge_data(edge);
    }

    fn heal_data(&self, edge: usize) {
        self.heal_edge_data(edge);
    }

    fn sever_ctrl(&self, edge: usize) {
        self.sever_edge_ctrl(edge);
    }

    fn heal_ctrl(&self, edge: usize) {
        self.heal_edge_ctrl(edge);
    }

    fn set_storage_fault_rate(&self, op: u32, rate: f64) {
        Running::set_storage_fault_rate(self, OperatorId::new(op), rate);
    }

    fn stall_storage(&self, op: u32, window: Duration) {
        Running::stall_storage(self, OperatorId::new(op), window);
    }

    fn sink_count(&self) -> usize {
        Running::sink_count(self)
    }

    fn stall_sink(&self, sink: usize, window: Duration) {
        Running::stall_sink(self, sink, window);
    }

    fn delay_spike(&self, edge: usize, extra: Duration, window: Duration) {
        Running::delay_spike_edge(self, edge, extra, window);
    }
}

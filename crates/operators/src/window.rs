//! Window aggregations — one per determinism class the paper identifies
//! (§1): event-time windows are deterministic, count windows depend on
//! arrival order, system-time windows depend on physical time.

use streammine_common::event::{Event, Value};
use streammine_core::{OpCtx, Operator, SetupCtx, StateHandle};
use streammine_stm::StmAbort;

use parking_lot::Mutex;

/// Aggregation function for windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowAgg {
    /// Sum of payload values.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Maximum.
    Max,
    /// Element count.
    Count,
}

impl WindowAgg {
    fn finish(self, sum: f64, count: u64, max: f64) -> f64 {
        match self {
            WindowAgg::Sum => sum,
            WindowAgg::Avg => {
                if count == 0 {
                    0.0
                } else {
                    sum / count as f64
                }
            }
            WindowAgg::Max => max,
            WindowAgg::Count => count as f64,
        }
    }
}

type AccHandle = StateHandle<(f64, u64, f64)>; // (sum, count, max)

fn fold(acc: (f64, u64, f64), v: f64) -> (f64, u64, f64) {
    (acc.0 + v, acc.1 + 1, if acc.1 == 0 { v } else { acc.2.max(v) })
}

/// Count-based tumbling window (§1: "for count-based windows, the order
/// will always be important"): emits one aggregate every `size` events.
pub struct CountWindow {
    size: u64,
    agg: WindowAgg,
    acc: Mutex<Option<AccHandle>>,
}

impl CountWindow {
    /// Creates a window of `size` events.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: u64, agg: WindowAgg) -> Self {
        assert!(size > 0, "window size must be positive");
        CountWindow { size, agg, acc: Mutex::new(None) }
    }
}

impl Operator for CountWindow {
    fn name(&self) -> &str {
        "count-window"
    }

    fn setup(&self, ctx: &mut SetupCtx<'_>) {
        *self.acc.lock() = Some(ctx.state((0.0f64, 0u64, 0.0f64)));
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        let handle = self.acc.lock().expect("setup ran");
        let v = event.payload.as_f64().unwrap_or(0.0);
        let acc = fold(*ctx.get(handle)?, v);
        if acc.1 >= self.size {
            ctx.emit(Value::Float(self.agg.finish(acc.0, acc.1, acc.2)));
            ctx.set(handle, (0.0, 0, 0.0))?;
        } else {
            ctx.set(handle, acc)?;
        }
        Ok(())
    }
}

/// Event-time tumbling window (deterministic, §1: "aggregations are
/// insensitive to ordering if the aggregation window is based on the event
/// timestamps" — here windows close on timestamp rollover of a
/// monotone-timestamp stream).
pub struct TimeWindow {
    width_us: u64,
    agg: WindowAgg,
    state: Mutex<Option<(StateHandle<u64>, AccHandle)>>, // (window start, acc)
}

impl TimeWindow {
    /// Creates a tumbling window of `width_us` microseconds of event time.
    ///
    /// # Panics
    ///
    /// Panics if `width_us == 0`.
    pub fn new(width_us: u64, agg: WindowAgg) -> Self {
        assert!(width_us > 0, "window width must be positive");
        TimeWindow { width_us, agg, state: Mutex::new(None) }
    }
}

impl Operator for TimeWindow {
    fn name(&self) -> &str {
        "time-window"
    }

    fn setup(&self, ctx: &mut SetupCtx<'_>) {
        *self.state.lock() = Some((ctx.state(u64::MAX), ctx.state((0.0f64, 0u64, 0.0f64))));
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        let (start_h, acc_h) = self.state.lock().expect("setup ran");
        let window = event.timestamp / self.width_us;
        let current = *ctx.get(start_h)?;
        let acc = *ctx.get(acc_h)?;
        if current == u64::MAX {
            ctx.set(start_h, window)?;
            ctx.set(acc_h, fold((0.0, 0, 0.0), event.payload.as_f64().unwrap_or(0.0)))?;
        } else if window > current {
            // Close the previous window, open the new one.
            ctx.emit(Value::Float(self.agg.finish(acc.0, acc.1, acc.2)));
            ctx.set(start_h, window)?;
            ctx.set(acc_h, fold((0.0, 0, 0.0), event.payload.as_f64().unwrap_or(0.0)))?;
        } else {
            ctx.set(acc_h, fold(acc, event.payload.as_f64().unwrap_or(0.0)))?;
        }
        Ok(())
    }
}

/// System-time tumbling window: the window an event falls into depends on
/// the *arrival* wall-clock time — a logged non-deterministic decision
/// (§1: "aggregation windows based on system time depend on the arrival
/// times of the events").
pub struct SystemTimeWindow {
    width_us: u64,
    agg: WindowAgg,
    state: Mutex<Option<(StateHandle<u64>, AccHandle)>>,
}

impl SystemTimeWindow {
    /// Creates a tumbling window of `width_us` microseconds of system time.
    ///
    /// # Panics
    ///
    /// Panics if `width_us == 0`.
    pub fn new(width_us: u64, agg: WindowAgg) -> Self {
        assert!(width_us > 0, "window width must be positive");
        SystemTimeWindow { width_us, agg, state: Mutex::new(None) }
    }
}

impl Operator for SystemTimeWindow {
    fn name(&self) -> &str {
        "system-time-window"
    }

    fn setup(&self, ctx: &mut SetupCtx<'_>) {
        *self.state.lock() = Some((ctx.state(u64::MAX), ctx.state((0.0f64, 0u64, 0.0f64))));
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        let (start_h, acc_h) = self.state.lock().expect("setup ran");
        // Logged determinant: the arrival time that buckets this event.
        let now = ctx.now_micros();
        let window = now / self.width_us;
        let current = *ctx.get(start_h)?;
        let acc = *ctx.get(acc_h)?;
        let v = event.payload.as_f64().unwrap_or(0.0);
        if current == u64::MAX || window == current {
            if current == u64::MAX {
                ctx.set(start_h, window)?;
            }
            ctx.set(acc_h, fold(acc, v))?;
        } else {
            ctx.emit(Value::Float(self.agg.finish(acc.0, acc.1, acc.2)));
            ctx.set(start_h, window)?;
            ctx.set(acc_h, fold((0.0, 0, 0.0), v))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use streammine_core::{GraphBuilder, OperatorConfig};

    fn run_window(op: impl Operator, inputs: Vec<Value>, expected_outputs: usize) -> Vec<f64> {
        let mut b = GraphBuilder::new();
        let w = b.add_operator(op, OperatorConfig::plain());
        let src = b.source_into(w).unwrap();
        let sink = b.sink_from(w).unwrap();
        let running = b.build().unwrap().start();
        for v in inputs {
            running.source(src).push(v);
        }
        assert!(running.sink(sink).wait_final(expected_outputs, Duration::from_secs(5)));
        let out =
            running.sink(sink).final_events().iter().filter_map(|e| e.payload.as_f64()).collect();
        running.shutdown();
        out
    }

    #[test]
    fn count_window_sums_per_window() {
        let out =
            run_window(CountWindow::new(3, WindowAgg::Sum), (1..=6).map(Value::Int).collect(), 2);
        assert_eq!(out, vec![6.0, 15.0]);
    }

    #[test]
    fn count_window_avg_and_max() {
        let out =
            run_window(CountWindow::new(2, WindowAgg::Avg), vec![Value::Int(2), Value::Int(4)], 1);
        assert_eq!(out, vec![3.0]);
        let out =
            run_window(CountWindow::new(2, WindowAgg::Max), vec![Value::Int(7), Value::Int(3)], 1);
        assert_eq!(out, vec![7.0]);
    }

    #[test]
    fn count_agg_counts() {
        let out =
            run_window(CountWindow::new(4, WindowAgg::Count), (0..4).map(Value::Int).collect(), 1);
        assert_eq!(out, vec![4.0]);
    }

    #[test]
    fn time_window_closes_on_timestamp_rollover() {
        // Source timestamps are wall-clock; use a wide window and force a
        // rollover by sleeping past the boundary.
        let mut b = GraphBuilder::new();
        let w = b.add_operator(TimeWindow::new(50_000, WindowAgg::Sum), OperatorConfig::plain());
        let src = b.source_into(w).unwrap();
        let sink = b.sink_from(w).unwrap();
        let running = b.build().unwrap().start();
        running.source(src).push(Value::Int(1));
        running.source(src).push(Value::Int(2));
        std::thread::sleep(Duration::from_millis(60));
        running.source(src).push(Value::Int(10));
        std::thread::sleep(Duration::from_millis(60));
        running.source(src).push(Value::Int(20));
        assert!(running.sink(sink).wait_final(2, Duration::from_secs(5)));
        let out: Vec<f64> =
            running.sink(sink).final_events().iter().filter_map(|e| e.payload.as_f64()).collect();
        assert_eq!(out[0], 3.0, "first window holds 1+2");
        assert_eq!(out[1], 10.0);
        running.shutdown();
    }

    #[test]
    fn system_time_window_buckets_by_arrival() {
        let mut b = GraphBuilder::new();
        let w = b
            .add_operator(SystemTimeWindow::new(50_000, WindowAgg::Count), OperatorConfig::plain());
        let src = b.source_into(w).unwrap();
        let sink = b.sink_from(w).unwrap();
        let running = b.build().unwrap().start();
        running.source(src).push(Value::Int(1));
        running.source(src).push(Value::Int(1));
        std::thread::sleep(Duration::from_millis(120));
        running.source(src).push(Value::Int(1));
        assert!(running.sink(sink).wait_final(1, Duration::from_secs(5)));
        let out: Vec<f64> =
            running.sink(sink).final_events().iter().filter_map(|e| e.payload.as_f64()).collect();
        assert_eq!(out[0], 2.0, "first system-time window saw two arrivals");
        running.shutdown();
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_count_window_panics() {
        let _ = CountWindow::new(0, WindowAgg::Sum);
    }

    #[test]
    #[should_panic(expected = "window width must be positive")]
    fn zero_time_window_panics() {
        let _ = TimeWindow::new(0, WindowAgg::Sum);
    }
}

//! Count-sketch operator — the paper's reference *expensive, stateful,
//! optimistically parallelizable* operator (§4, Figures 4, 6, 7).
//!
//! Every counter is its own state cell, so an update touches exactly
//! `depth` cells chosen by runtime hashing: events hitting different
//! counters can be processed in parallel without conflicts, which static
//! analysis cannot prove but optimistic execution exploits.

use std::time::Duration;

use streammine_common::event::{Event, Value};
use streammine_common::rng::DetRng;
use streammine_core::{OpCtx, Operator, SetupCtx, StateHandle};
use streammine_sketch::hashing::PairwiseHash;
use streammine_stm::StmAbort;

use parking_lot::Mutex;

use crate::basic::busy_work;

/// Count-sketch update + estimate operator: for each input event (keyed by
/// its integer payload or stable hash), updates the sketch and emits
/// `Record[key, estimate]`.
pub struct SketchOp {
    width: usize,
    depth: usize,
    bucket_hashes: Vec<PairwiseHash>,
    sign_hashes: Vec<PairwiseHash>,
    cost: Duration,
    stamped: bool,
    cells: Mutex<Vec<StateHandle<i64>>>,
}

impl SketchOp {
    /// Creates a sketch operator with `width × depth` counters and a fixed
    /// per-event processing cost (simulating the expensive analysis the
    /// paper attaches to sketch operators).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize, seed: u64, cost: Duration) -> Self {
        assert!(width > 0 && depth > 0, "width and depth must be positive");
        let mut rng = DetRng::seed_from(seed);
        let bucket_hashes = (0..depth).map(|_| PairwiseHash::sample(&mut rng)).collect();
        let sign_hashes = (0..depth).map(|_| PairwiseHash::sample(&mut rng)).collect();
        SketchOp {
            width,
            depth,
            bucket_hashes,
            sign_hashes,
            cost,
            stamped: false,
            cells: Mutex::new(Vec::new()),
        }
    }

    /// Makes the operator draw one logged random decision per event, like
    /// the paper's Figure 6(b)/7 configuration where "both components do
    /// logging".
    #[must_use]
    pub fn stamped(mut self) -> Self {
        self.stamped = true;
        self
    }

    fn key_of(event: &Event) -> u64 {
        event.payload.as_i64().map(|v| v as u64).unwrap_or_else(|| event.payload.stable_hash())
    }
}

impl Operator for SketchOp {
    fn name(&self) -> &str {
        "count-sketch"
    }

    fn setup(&self, ctx: &mut SetupCtx<'_>) {
        let mut cells = self.cells.lock();
        cells.clear();
        for _ in 0..self.width * self.depth {
            cells.push(ctx.state(0i64));
        }
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        if self.stamped {
            let _decision = ctx.random_u64();
        }
        busy_work(self.cost);
        let key = Self::key_of(event);
        let cells = self.cells.lock().clone();
        let mut samples = Vec::with_capacity(self.depth);
        for (r, (bh, sh)) in self.bucket_hashes.iter().zip(&self.sign_hashes).enumerate() {
            let b = bh.bucket(key, self.width);
            let s = sh.sign(key);
            let cell = cells[r * self.width + b];
            ctx.update(cell, |v| v + s)?;
            samples.push(s * *ctx.get(cell)?);
        }
        samples.sort_unstable();
        let est = samples[samples.len() / 2];
        ctx.emit(Value::record(vec![Value::Int(key as i64), Value::Int(est)]));
        Ok(())
    }
}

/// Count-min update + estimate operator — the approximate-recovery
/// reference workload.
///
/// Each input event (keyed by its integer payload or stable hash)
/// increments one non-negative counter per row and emits
/// `Record[key, estimate]` with the count-min estimate (the row
/// minimum). Counters only ever grow, so dropping `L` updates — the
/// loss a stale-snapshot resume charges to its error budget — lowers
/// any later estimate by at most `L` and never raises one. That
/// monotone-deficit invariant is exactly what the divergence-bounded
/// chaos grid verifies against the declared `ε·N` allowance.
pub struct CountMinOp {
    width: usize,
    depth: usize,
    hashes: Vec<PairwiseHash>,
    cost: Duration,
    stamped: bool,
    cells: Mutex<Vec<StateHandle<i64>>>,
}

impl CountMinOp {
    /// Creates a count-min operator with `width × depth` counters and a
    /// fixed per-event processing cost.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize, seed: u64, cost: Duration) -> Self {
        assert!(width > 0 && depth > 0, "width and depth must be positive");
        let mut rng = DetRng::seed_from(seed);
        let hashes = (0..depth).map(|_| PairwiseHash::sample(&mut rng)).collect();
        CountMinOp { width, depth, hashes, cost, stamped: false, cells: Mutex::new(Vec::new()) }
    }

    /// Makes the operator draw one logged random decision per event, so
    /// precise mode pays the determinant-log wait that approximate mode
    /// trades away for the error budget.
    #[must_use]
    pub fn stamped(mut self) -> Self {
        self.stamped = true;
        self
    }

    fn key_of(event: &Event) -> u64 {
        event.payload.as_i64().map(|v| v as u64).unwrap_or_else(|| event.payload.stable_hash())
    }
}

impl Operator for CountMinOp {
    fn name(&self) -> &str {
        "count-min"
    }

    fn setup(&self, ctx: &mut SetupCtx<'_>) {
        let mut cells = self.cells.lock();
        cells.clear();
        for _ in 0..self.width * self.depth {
            cells.push(ctx.state(0i64));
        }
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        if self.stamped {
            let _decision = ctx.random_u64();
        }
        busy_work(self.cost);
        let key = Self::key_of(event);
        let cells = self.cells.lock().clone();
        let mut est = i64::MAX;
        for (r, h) in self.hashes.iter().enumerate() {
            let cell = cells[r * self.width + h.bucket(key, self.width)];
            ctx.update(cell, |v| v + 1)?;
            est = est.min(*ctx.get(cell)?);
        }
        ctx.emit(Value::record(vec![Value::Int(key as i64), Value::Int(est)]));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streammine_core::{GraphBuilder, OperatorConfig};

    #[test]
    fn estimates_track_counts_for_single_key() {
        let mut b = GraphBuilder::new();
        let s = b.add_operator(SketchOp::new(64, 3, 7, Duration::ZERO), OperatorConfig::plain());
        let src = b.source_into(s).unwrap();
        let sink = b.sink_from(s).unwrap();
        let running = b.build().unwrap().start();
        for _ in 0..5 {
            running.source(src).push(Value::Int(42));
        }
        assert!(running.sink(sink).wait_final(5, Duration::from_secs(5)));
        let estimates: Vec<i64> = running
            .sink(sink)
            .final_events()
            .iter()
            .filter_map(|e| e.payload.field(1).and_then(Value::as_i64))
            .collect();
        assert_eq!(estimates, vec![1, 2, 3, 4, 5], "single key has no collisions to distort");
        running.shutdown();
    }

    #[test]
    fn parallel_speculative_sketch_matches_sequential() {
        let run = |config: OperatorConfig| -> i64 {
            let mut b = GraphBuilder::new();
            let s = b.add_operator(SketchOp::new(128, 3, 9, Duration::ZERO), config);
            let src = b.source_into(s).unwrap();
            let sink = b.sink_from(s).unwrap();
            let running = b.build().unwrap().start();
            for i in 0..40 {
                running.source(src).push(Value::Int(i % 10));
            }
            assert!(running.sink(sink).wait_final(40, Duration::from_secs(10)));
            // Sum of final estimates is a stable summary of the final state.
            let sum = running
                .sink(sink)
                .final_events_by_id()
                .iter()
                .filter_map(|e| e.payload.field(1).and_then(Value::as_i64))
                .sum();
            running.shutdown();
            sum
        };
        let sequential = run(OperatorConfig::plain());
        let parallel = run(OperatorConfig::speculative_unlogged().with_threads(4));
        assert_eq!(sequential, parallel);
    }

    #[test]
    #[should_panic(expected = "width and depth must be positive")]
    fn zero_dims_panic() {
        let _ = SketchOp::new(0, 3, 1, Duration::ZERO);
    }

    #[test]
    fn countmin_estimates_are_exact_without_collisions() {
        let mut b = GraphBuilder::new();
        let s =
            b.add_operator(CountMinOp::new(256, 4, 11, Duration::ZERO), OperatorConfig::plain());
        let src = b.source_into(s).unwrap();
        let sink = b.sink_from(s).unwrap();
        let running = b.build().unwrap().start();
        for _ in 0..6 {
            running.source(src).push(Value::Int(5));
        }
        assert!(running.sink(sink).wait_final(6, Duration::from_secs(5)));
        let estimates: Vec<i64> = running
            .sink(sink)
            .final_events()
            .iter()
            .filter_map(|e| e.payload.field(1).and_then(Value::as_i64))
            .collect();
        assert_eq!(estimates, vec![1, 2, 3, 4, 5, 6]);
        running.shutdown();
    }

    #[test]
    fn countmin_never_underestimates() {
        let mut b = GraphBuilder::new();
        // A deliberately tiny sketch forces collisions: estimates may
        // exceed the true count but must never fall below it.
        let s = b.add_operator(CountMinOp::new(4, 2, 3, Duration::ZERO), OperatorConfig::plain());
        let src = b.source_into(s).unwrap();
        let sink = b.sink_from(s).unwrap();
        let running = b.build().unwrap().start();
        let n = 60;
        for i in 0..n {
            running.source(src).push(Value::Int(i % 9));
        }
        assert!(running.sink(sink).wait_final(n as usize, Duration::from_secs(5)));
        let mut true_counts = std::collections::HashMap::new();
        for e in running.sink(sink).final_events_by_id() {
            let key = e.payload.field(0).and_then(Value::as_i64).unwrap();
            let est = e.payload.field(1).and_then(Value::as_i64).unwrap();
            let seen = true_counts.entry(key).or_insert(0i64);
            *seen += 1;
            assert!(est >= *seen, "key {key}: estimate {est} below true count {seen}");
        }
        running.shutdown();
    }
}

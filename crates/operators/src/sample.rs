//! Random sampling — the paper's "usage of non-determinism in processing
//! (e.g., Monte-Carlo simulations, which are based on random numbers)"
//! class (§1). Every keep/drop decision is one logged determinant.

use streammine_common::event::{Event, Value};
use streammine_core::{OpCtx, Operator, SetupCtx, StateHandle};
use streammine_stm::StmAbort;

use parking_lot::Mutex;

/// Bernoulli sampler: forwards each event with probability `p`; the coin
/// flip is a logged non-deterministic decision, so recovery replays the
/// exact same sample.
pub struct Sample {
    keep_per_2_32: u64,
    kept: Mutex<Option<StateHandle<i64>>>,
}

impl Sample {
    /// Creates a sampler keeping each event with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        Sample { keep_per_2_32: (p * f64::from(u32::MAX)) as u64, kept: Mutex::new(None) }
    }
}

impl Operator for Sample {
    fn name(&self) -> &str {
        "sample"
    }

    fn setup(&self, ctx: &mut SetupCtx<'_>) {
        *self.kept.lock() = Some(ctx.state(0i64));
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        // One logged draw per event; compared against the keep threshold.
        let coin = ctx.random_below(u64::from(u32::MAX) + 1);
        if coin < self.keep_per_2_32 {
            let handle = self.kept.lock().expect("setup ran");
            ctx.update(handle, |k| k + 1)?;
            ctx.emit(event.payload.clone());
        }
        Ok(())
    }
}

/// Monte-Carlo estimator: for each input event, draws `draws` random points
/// in the unit square and emits the running π estimate — a deliberately
/// draw-heavy non-deterministic operator for logging-volume experiments.
pub struct MonteCarloPi {
    draws: u32,
    state: Mutex<Option<(StateHandle<i64>, StateHandle<i64>)>>, // (inside, total)
}

impl MonteCarloPi {
    /// Creates an estimator with `draws` samples per event.
    ///
    /// # Panics
    ///
    /// Panics if `draws == 0`.
    pub fn new(draws: u32) -> Self {
        assert!(draws > 0, "draws must be positive");
        MonteCarloPi { draws, state: Mutex::new(None) }
    }
}

impl Operator for MonteCarloPi {
    fn name(&self) -> &str {
        "monte-carlo-pi"
    }

    fn setup(&self, ctx: &mut SetupCtx<'_>) {
        *self.state.lock() = Some((ctx.state(0i64), ctx.state(0i64)));
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, _event: &Event) -> Result<(), StmAbort> {
        let (inside_h, total_h) = self.state.lock().expect("setup ran");
        let mut hits = 0i64;
        for _ in 0..self.draws {
            // Two logged draws per point.
            let x = ctx.random_below(1 << 16) as f64 / (1 << 16) as f64;
            let y = ctx.random_below(1 << 16) as f64 / (1 << 16) as f64;
            if x * x + y * y <= 1.0 {
                hits += 1;
            }
        }
        ctx.update(inside_h, |v| v + hits)?;
        ctx.update(total_h, |v| v + i64::from(self.draws))?;
        let inside = *ctx.get(inside_h)?;
        let total = *ctx.get(total_h)?;
        ctx.emit(Value::Float(4.0 * inside as f64 / total as f64));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use streammine_core::{GraphBuilder, LoggingConfig, OperatorConfig};

    #[test]
    fn sample_rate_is_roughly_p() {
        let mut b = GraphBuilder::new();
        let s = b.add_operator(Sample::new(0.5), OperatorConfig::plain());
        let src = b.source_into(s).unwrap();
        let sink = b.sink_from(s).unwrap();
        let running = b.build().unwrap().start();
        for i in 0..400 {
            running.source(src).push(Value::Int(i));
        }
        std::thread::sleep(Duration::from_millis(300));
        let kept = running.sink(sink).final_count();
        assert!((120..=280).contains(&kept), "kept {kept}/400 at p=0.5");
        running.shutdown();
    }

    #[test]
    fn sample_extremes() {
        for (p, expect_all) in [(0.0, false), (1.0, true)] {
            let mut b = GraphBuilder::new();
            let s = b.add_operator(Sample::new(p), OperatorConfig::plain());
            let src = b.source_into(s).unwrap();
            let sink = b.sink_from(s).unwrap();
            let running = b.build().unwrap().start();
            for i in 0..20 {
                running.source(src).push(Value::Int(i));
            }
            std::thread::sleep(Duration::from_millis(150));
            let kept = running.sink(sink).final_count();
            if expect_all {
                assert!(kept >= 19, "p=1 must keep (almost) everything, kept {kept}");
            } else {
                assert_eq!(kept, 0, "p=0 must drop everything");
            }
            running.shutdown();
        }
    }

    #[test]
    fn sample_decisions_replay_after_crash() {
        // The sampled subset must be identical across recovery.
        let mut b = GraphBuilder::new();
        let s = b.add_operator(
            Sample::new(0.5),
            OperatorConfig::logged(LoggingConfig::simulated(Duration::from_micros(200))),
        );
        let src = b.source_into(s).unwrap();
        let sink = b.sink_from(s).unwrap();
        let running = b.build().unwrap().start();
        let op = streammine_common::ids::OperatorId::new(0);
        for i in 0..40 {
            running.source(src).push(Value::Int(i));
        }
        std::thread::sleep(Duration::from_millis(300));
        let before: Vec<Value> =
            running.sink(sink).final_events_by_id().into_iter().map(|e| e.payload).collect();
        running.crash(op);
        running.recover(op);
        std::thread::sleep(Duration::from_millis(500));
        let after: Vec<Value> =
            running.sink(sink).final_events_by_id().into_iter().map(|e| e.payload).collect();
        assert_eq!(before, after, "the sampled subset changed across recovery");
        running.shutdown();
    }

    #[test]
    fn monte_carlo_pi_converges_loosely() {
        let mut b = GraphBuilder::new();
        let m = b.add_operator(MonteCarloPi::new(200), OperatorConfig::plain());
        let src = b.source_into(m).unwrap();
        let sink = b.sink_from(m).unwrap();
        let running = b.build().unwrap().start();
        for i in 0..20 {
            running.source(src).push(Value::Int(i));
        }
        assert!(running.sink(sink).wait_final(20, Duration::from_secs(10)));
        let last = running
            .sink(sink)
            .final_events_by_id()
            .last()
            .and_then(|e| e.payload.as_f64())
            .unwrap();
        assert!((2.9..3.4).contains(&last), "pi estimate {last} wildly off after 4000 draws");
        running.shutdown();
    }

    #[test]
    #[should_panic(expected = "probability must be in [0,1]")]
    fn invalid_probability_panics() {
        let _ = Sample::new(1.5);
    }
}

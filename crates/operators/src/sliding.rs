//! Sliding count windows (extension beyond the paper's tumbling windows).

use streammine_common::event::{Event, Value};
use streammine_core::{OpCtx, Operator, SetupCtx, StateHandle};
use streammine_stm::StmAbort;

use parking_lot::Mutex;

use crate::window::WindowAgg;

/// `(buffer, count)` state handles registered at setup.
type SlidingState = (StateHandle<Vec<(u64, Value)>>, StateHandle<u64>);

/// Sliding count window: emits the aggregate of the last `size` events for
/// every `slide`-th arrival. Order-sensitive like all count windows, hence
/// preserved exactly by precise recovery.
pub struct SlidingWindow {
    size: usize,
    slide: u64,
    agg: WindowAgg,
    state: Mutex<Option<SlidingState>>,
}

impl SlidingWindow {
    /// Creates a window of `size` events emitting every `slide` arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `slide == 0`.
    pub fn new(size: usize, slide: u64, agg: WindowAgg) -> Self {
        assert!(size > 0, "window size must be positive");
        assert!(slide > 0, "slide must be positive");
        SlidingWindow { size, slide, agg, state: Mutex::new(None) }
    }
}

impl Operator for SlidingWindow {
    fn name(&self) -> &str {
        "sliding-window"
    }

    fn setup(&self, ctx: &mut SetupCtx<'_>) {
        *self.state.lock() = Some((ctx.state(Vec::new()), ctx.state(0u64)));
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        let (buf_h, count_h) = self.state.lock().expect("setup ran");
        let mut buf = (*ctx.get(buf_h)?).clone();
        let count = *ctx.get(count_h)? + 1;
        buf.push((count, event.payload.clone()));
        if buf.len() > self.size {
            let excess = buf.len() - self.size;
            buf.drain(..excess);
        }
        if count % self.slide == 0 && buf.len() == self.size {
            let values: Vec<f64> = buf.iter().filter_map(|(_, v)| v.as_f64()).collect();
            let sum: f64 = values.iter().sum();
            let max = values.iter().cloned().fold(f64::MIN, f64::max);
            let out = match self.agg {
                WindowAgg::Sum => sum,
                WindowAgg::Avg => sum / values.len() as f64,
                WindowAgg::Max => max,
                WindowAgg::Count => values.len() as f64,
            };
            ctx.emit(Value::Float(out));
        }
        ctx.set(buf_h, buf)?;
        ctx.set(count_h, count)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use streammine_core::{GraphBuilder, OperatorConfig};

    fn run(size: usize, slide: u64, agg: WindowAgg, inputs: Vec<i64>, expect: usize) -> Vec<f64> {
        let mut b = GraphBuilder::new();
        let w = b.add_operator(SlidingWindow::new(size, slide, agg), OperatorConfig::plain());
        let src = b.source_into(w).unwrap();
        let sink = b.sink_from(w).unwrap();
        let running = b.build().unwrap().start();
        for v in inputs {
            running.source(src).push(Value::Int(v));
        }
        assert!(running.sink(sink).wait_final(expect, Duration::from_secs(5)));
        let out = running
            .sink(sink)
            .final_events_by_id()
            .iter()
            .filter_map(|e| e.payload.as_f64())
            .collect();
        running.shutdown();
        out
    }

    #[test]
    fn slide_one_emits_rolling_sums() {
        // size=3, slide=1 over 1..=5: windows [1,2,3],[2,3,4],[3,4,5].
        let out = run(3, 1, WindowAgg::Sum, (1..=5).collect(), 3);
        assert_eq!(out, vec![6.0, 9.0, 12.0]);
    }

    #[test]
    fn slide_two_skips_alternate_emissions() {
        // size=2, slide=2 over 1..=6: emissions at counts 2,4,6.
        let out = run(2, 2, WindowAgg::Sum, (1..=6).collect(), 3);
        assert_eq!(out, vec![3.0, 7.0, 11.0]);
    }

    #[test]
    fn rolling_max() {
        let out = run(2, 1, WindowAgg::Max, vec![5, 1, 7, 3], 3);
        assert_eq!(out, vec![5.0, 7.0, 7.0]);
    }

    #[test]
    fn no_emission_before_window_fills() {
        let mut b = GraphBuilder::new();
        let w = b.add_operator(SlidingWindow::new(4, 1, WindowAgg::Sum), OperatorConfig::plain());
        let src = b.source_into(w).unwrap();
        let sink = b.sink_from(w).unwrap();
        let running = b.build().unwrap().start();
        for v in 1..=3 {
            running.source(src).push(Value::Int(v));
        }
        assert!(!running.sink(sink).wait_final(1, Duration::from_millis(150)));
        running.shutdown();
    }

    #[test]
    #[should_panic(expected = "slide must be positive")]
    fn zero_slide_panics() {
        let _ = SlidingWindow::new(2, 0, WindowAgg::Sum);
    }
}

//! Stateless operators: filter, map, enrich, union, split, stamped relay.

use std::sync::Mutex as StdMutex;
use std::time::{Duration, Instant};

use streammine_common::event::{Event, Value};
use streammine_core::{OpCtx, Operator};
use streammine_stm::StmAbort;

/// Burns CPU for approximately `d` — simulates real per-event processing
/// cost (the paper's "costly operations", §4). Spin-based so it occupies a
/// worker thread the way real computation would, unlike `sleep`.
pub fn busy_work(d: Duration) {
    if d.is_zero() {
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

type Predicate = dyn Fn(&Value) -> bool + Send + Sync;

/// Stateless deterministic filter (§1): forwards events whose payload
/// satisfies the predicate.
pub struct Filter {
    pred: Box<Predicate>,
}

impl Filter {
    /// Creates a filter from a predicate over the payload.
    pub fn new(pred: impl Fn(&Value) -> bool + Send + Sync + 'static) -> Self {
        Filter { pred: Box::new(pred) }
    }
}

impl Operator for Filter {
    fn name(&self) -> &str {
        "filter"
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        if (self.pred)(&event.payload) {
            ctx.emit(event.payload.clone());
        }
        Ok(())
    }
}

type Transform = dyn Fn(&Value) -> Value + Send + Sync;

/// Stateless deterministic transformation.
pub struct Map {
    f: Box<Transform>,
}

impl Map {
    /// Creates a map from a payload transformation.
    pub fn new(f: impl Fn(&Value) -> Value + Send + Sync + 'static) -> Self {
        Map { f: Box::new(f) }
    }
}

impl Operator for Map {
    fn name(&self) -> &str {
        "map"
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        ctx.emit((self.f)(&event.payload));
        Ok(())
    }
}

/// Enrichment (§2.1 step 3): adds offline information to each event,
/// modeling the external lookup with a fixed CPU cost. Stateless and
/// order-insensitive, so it "can be parallelized by simply replicating the
/// component" — or speculatively, which is what we benchmark.
pub struct Enrich {
    cost: Duration,
    f: Box<Transform>,
}

impl Enrich {
    /// Creates an enricher with a per-event lookup cost.
    pub fn new(cost: Duration, f: impl Fn(&Value) -> Value + Send + Sync + 'static) -> Self {
        Enrich { cost, f: Box::new(f) }
    }
}

impl Operator for Enrich {
    fn name(&self) -> &str {
        "enrich"
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        busy_work(self.cost);
        ctx.emit((self.f)(&event.payload));
        Ok(())
    }
}

/// Union (§1): merges all input streams into one. The operator itself just
/// forwards; the *order* in which the engine interleaved the inputs is the
/// non-deterministic decision, and the engine logs it (`InputChoice`)
/// whenever the operator has more than one input.
#[derive(Debug, Default)]
pub struct Union;

impl Union {
    /// Creates a union operator.
    pub fn new() -> Self {
        Union
    }
}

impl Operator for Union {
    fn name(&self) -> &str {
        "union"
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        ctx.emit(event.payload.clone());
        Ok(())
    }
}

/// Split (§2.1 step 4, §2.2): balances load by routing each event to one
/// downstream output, chosen at random. The random choice is a logged
/// determinant, making the routing replayable — exactly the paper's
/// stateless-but-non-deterministic example.
#[derive(Debug)]
pub struct Split {
    outputs: u32,
}

impl Split {
    /// Creates a splitter over `outputs` downstream connections.
    ///
    /// # Panics
    ///
    /// Panics if `outputs == 0`.
    pub fn new(outputs: u32) -> Self {
        assert!(outputs > 0, "split needs at least one output");
        Split { outputs }
    }
}

impl Operator for Split {
    fn name(&self) -> &str {
        "split"
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        let target = ctx.random_below(u64::from(self.outputs)) as u32;
        ctx.emit_to(target, event.payload.clone());
        Ok(())
    }
}

/// The per-hop workload of Figures 2 and 3: consumes one event, draws one
/// 64-bit non-deterministic decision (which the engine must force to
/// stable storage), optionally burns some processing cost, and forwards
/// the event. Chains of these are the paper's "N components that need to
/// log their decisions".
pub struct StampedRelay {
    cost: Duration,
    /// Keeps the last drawn stamp for tests.
    last_stamp: StdMutex<u64>,
}

impl StampedRelay {
    /// Creates a relay with zero processing cost.
    pub fn new() -> Self {
        Self::with_cost(Duration::ZERO)
    }

    /// Creates a relay with the given per-event CPU cost.
    pub fn with_cost(cost: Duration) -> Self {
        StampedRelay { cost, last_stamp: StdMutex::new(0) }
    }
}

impl Default for StampedRelay {
    fn default() -> Self {
        Self::new()
    }
}

impl Operator for StampedRelay {
    fn name(&self) -> &str {
        "stamped-relay"
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        // One 64-bit decision per event, as in §2.4's experiment.
        let stamp = ctx.random_u64();
        *self.last_stamp.lock().expect("poisoned") = stamp;
        busy_work(self.cost);
        ctx.emit(event.payload.clone());
        Ok(())
    }
}

/// Non-deterministic relay emitting `[input, random-tag]`: like
/// [`StampedRelay`] but the drawn decision is *visible in the output*, so
/// chains of these make sink bytes depend on every hop's RNG stream.
/// Byte-identical recovery then requires bit-exact determinant replay and
/// RNG continuity across every crash — the chaos suites' workhorse.
#[derive(Debug, Default, Clone, Copy)]
pub struct RandomTagger;

impl RandomTagger {
    /// The registry name used by distributed worker binaries.
    pub const NAME: &'static str = "random-tagger";
}

impl Operator for RandomTagger {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        let tag = ctx.random_u64();
        ctx.emit(Value::record(vec![event.payload.clone(), Value::Int(tag as i64)]));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use streammine_core::{GraphBuilder, OperatorConfig};

    fn run_simple(op: impl Operator, inputs: Vec<Value>) -> Vec<Value> {
        let mut b = GraphBuilder::new();
        let id = b.add_operator(op, OperatorConfig::plain());
        let src = b.source_into(id).unwrap();
        let sink = b.sink_from(id).unwrap();
        let running = b.build().unwrap().start();
        let n = inputs.len();
        for v in inputs {
            running.source(src).push(v);
        }
        // Not all inputs produce outputs (filter); wait for quiescence.
        std::thread::sleep(Duration::from_millis(100));
        let _ = n;
        let out = running.sink(sink).final_events().into_iter().map(|e| e.payload).collect();
        running.shutdown();
        out
    }

    #[test]
    fn filter_drops_non_matching() {
        let out = run_simple(
            Filter::new(|v| v.as_i64().unwrap_or(0) % 2 == 0),
            (0..6).map(Value::Int).collect(),
        );
        assert_eq!(out, vec![Value::Int(0), Value::Int(2), Value::Int(4)]);
    }

    #[test]
    fn map_transforms() {
        let out = run_simple(
            Map::new(|v| Value::Int(v.as_i64().unwrap_or(0) * 10)),
            vec![Value::Int(1), Value::Int(2)],
        );
        assert_eq!(out, vec![Value::Int(10), Value::Int(20)]);
    }

    #[test]
    fn enrich_adds_information() {
        let out = run_simple(
            Enrich::new(Duration::from_micros(50), |v| {
                Value::record(vec![v.clone(), Value::Str("enriched".into())])
            }),
            vec![Value::Int(5)],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].field(1).and_then(Value::as_str), Some("enriched"));
    }

    #[test]
    fn union_merges_two_streams() {
        let mut b = GraphBuilder::new();
        let u = b.add_operator(Union::new(), OperatorConfig::plain());
        let s1 = b.source_into(u).unwrap();
        let s2 = b.source_into(u).unwrap();
        let sink = b.sink_from(u).unwrap();
        let running = b.build().unwrap().start();
        running.source(s1).push(Value::Int(1));
        running.source(s2).push(Value::Int(2));
        assert!(running.sink(sink).wait_final(2, Duration::from_secs(5)));
        let mut out: Vec<i64> =
            running.sink(sink).final_events().iter().filter_map(|e| e.payload.as_i64()).collect();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
        running.shutdown();
    }

    #[test]
    fn split_routes_each_event_to_exactly_one_output() {
        let mut b = GraphBuilder::new();
        let s = b.add_operator(Split::new(2), OperatorConfig::plain());
        let src = b.source_into(s).unwrap();
        let sink_a = b.sink_from(s).unwrap();
        let sink_b = b.sink_from(s).unwrap();
        let running = b.build().unwrap().start();
        let n = 60;
        for i in 0..n {
            running.source(src).push(Value::Int(i));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let total = running.sink(sink_a).final_count() + running.sink(sink_b).final_count();
            if total as i64 >= n {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "timed out: {total}/{n}");
            std::thread::yield_now();
        }
        let a = running.sink(sink_a).final_count() as i64;
        let b_count = running.sink(sink_b).final_count() as i64;
        assert_eq!(a + b_count, n);
        assert!(a > 0 && b_count > 0, "random routing should hit both ({a}/{b_count})");
        running.shutdown();
    }

    #[test]
    fn stamped_relay_forwards_and_draws() {
        let out = run_simple(StampedRelay::new(), vec![Value::Int(9)]);
        assert_eq!(out, vec![Value::Int(9)]);
    }

    #[test]
    fn busy_work_takes_roughly_requested_time() {
        let start = Instant::now();
        busy_work(Duration::from_millis(2));
        assert!(start.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn zero_output_split_panics() {
        let _ = Split::new(0);
    }
}

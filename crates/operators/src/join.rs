//! Symmetric hash join — the paper's example of a stateful AND
//! non-deterministic operator (§1): results depend both on which events
//! are waiting to be matched (state) and on arrival order across the two
//! streams ("the first event from S2 that arrives will trigger the join").

use streammine_common::event::{Event, Value};
use streammine_core::{OpCtx, Operator, PortId, SetupCtx, StateHandle};
use streammine_stm::StmAbort;

use parking_lot::Mutex;

type KeyFn = dyn Fn(&Value) -> u64 + Send + Sync;
type Side = Vec<(u64, Value)>;

/// Joins events from input port 0 (left) and port 1 (right) on a key.
///
/// Each arriving event is matched against all waiting events of the other
/// side with the same key; every match emits `Record[left, right]`.
/// Matched partners are consumed (one-shot join); unmatched events wait.
pub struct Join {
    key: Box<KeyFn>,
    state: Mutex<Option<(StateHandle<Side>, StateHandle<Side>)>>,
}

impl Join {
    /// Creates a join with the given key extractor.
    pub fn new(key: impl Fn(&Value) -> u64 + Send + Sync + 'static) -> Self {
        Join { key: Box::new(key), state: Mutex::new(None) }
    }

    /// Joins on the integer payload itself (convenience for tests).
    pub fn on_int() -> Self {
        Self::new(|v| v.as_i64().unwrap_or(0) as u64)
    }
}

impl Operator for Join {
    fn name(&self) -> &str {
        "join"
    }

    fn setup(&self, ctx: &mut SetupCtx<'_>) {
        *self.state.lock() = Some((ctx.state(Side::new()), ctx.state(Side::new())));
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        let (left_h, right_h) = self.state.lock().expect("setup ran");
        let key = (self.key)(&event.payload);
        let (mine, other, left_first) = match ctx.input_port() {
            PortId(0) => (left_h, right_h, true),
            _ => (right_h, left_h, false),
        };
        let mut waiting = (*ctx.get(other)?).clone();
        if let Some(pos) = waiting.iter().position(|(k, _)| *k == key) {
            let (_, partner) = waiting.remove(pos);
            ctx.set(other, waiting)?;
            let (l, r) = if left_first {
                (event.payload.clone(), partner)
            } else {
                (partner, event.payload.clone())
            };
            ctx.emit(Value::record(vec![l, r]));
        } else {
            let mut own = (*ctx.get(mine)?).clone();
            own.push((key, event.payload.clone()));
            ctx.set(mine, own)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use streammine_core::{GraphBuilder, OperatorConfig};

    fn setup_join() -> (
        streammine_core::Running,
        streammine_core::SourceId,
        streammine_core::SourceId,
        streammine_core::SinkId,
    ) {
        let mut b = GraphBuilder::new();
        let j = b.add_operator(Join::on_int(), OperatorConfig::plain());
        let left = b.source_into(j).unwrap();
        let right = b.source_into(j).unwrap();
        let sink = b.sink_from(j).unwrap();
        (b.build().unwrap().start(), left, right, sink)
    }

    #[test]
    fn matching_events_join_once() {
        let (running, left, right, sink) = setup_join();
        running.source(left).push(Value::Int(7));
        running.source(right).push(Value::Int(7));
        assert!(running.sink(sink).wait_final(1, Duration::from_secs(5)));
        let out = running.sink(sink).final_events();
        assert_eq!(out[0].payload, Value::record(vec![Value::Int(7), Value::Int(7)]));
        running.shutdown();
    }

    #[test]
    fn unmatched_events_wait() {
        let (running, left, _right, sink) = setup_join();
        running.source(left).push(Value::Int(1));
        running.source(left).push(Value::Int(2));
        assert!(!running.sink(sink).wait_final(1, Duration::from_millis(150)));
        running.shutdown();
    }

    #[test]
    fn first_arrival_wins_the_match() {
        // Two right events with the same key: only one joins per left.
        let (running, left, right, sink) = setup_join();
        running.source(right).push(Value::Int(5));
        running.source(right).push(Value::Int(5));
        std::thread::sleep(Duration::from_millis(50));
        running.source(left).push(Value::Int(5));
        assert!(running.sink(sink).wait_final(1, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(running.sink(sink).final_count(), 1, "exactly one pair per match");
        running.shutdown();
    }

    #[test]
    fn join_output_order_left_right() {
        // Right waits; left triggers; the output record must be [l, r]
        // regardless of which side arrived first.
        let mut b = GraphBuilder::new();
        let j = b.add_operator(
            Join::new(|v| v.field(0).and_then(Value::as_i64).unwrap_or(0) as u64),
            OperatorConfig::plain(),
        );
        let left = b.source_into(j).unwrap();
        let right = b.source_into(j).unwrap();
        let sink = b.sink_from(j).unwrap();
        let running = b.build().unwrap().start();
        running.source(right).push(Value::record(vec![Value::Int(3), Value::Str("r".into())]));
        std::thread::sleep(Duration::from_millis(50));
        running.source(left).push(Value::record(vec![Value::Int(3), Value::Str("l".into())]));
        assert!(running.sink(sink).wait_final(1, Duration::from_secs(5)));
        let out = &running.sink(sink).final_events()[0].payload;
        let l_side = out.field(0).and_then(|v| v.field(1)).and_then(Value::as_str);
        let r_side = out.field(1).and_then(|v| v.field(1)).and_then(Value::as_str);
        assert_eq!(l_side, Some("l"));
        assert_eq!(r_side, Some("r"));
        running.shutdown();
    }
}

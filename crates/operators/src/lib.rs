//! Standard operator library for StreamMine.
//!
//! Implements the operator classes the paper enumerates (§1):
//!
//! | Operator | State | Determinism | Here |
//! |---|---|---|---|
//! | filter | stateless | deterministic | [`Filter`] |
//! | transformation | stateless | deterministic | [`Map`] |
//! | enrichment | stateless | deterministic, *costly* | [`Enrich`] |
//! | union | stateless | order non-deterministic | [`Union`] |
//! | split | stateless | randomized routing | [`Split`] |
//! | aggregation (count window) | stateful | order-sensitive | [`CountWindow`] |
//! | aggregation (event-time window) | stateful | deterministic | [`TimeWindow`] |
//! | aggregation (system-time window) | stateful | time non-deterministic | [`SystemTimeWindow`] |
//! | join | stateful | order non-deterministic | [`Join`] |
//! | classifier (§3.1 example) | stateful, fine-grained | deterministic | [`Classifier`] |
//! | count-sketch top-k (§4) | stateful, fine-grained, costly | deterministic | [`SketchOp`] |
//! | count-min (approximate-recovery workload) | stateful, mergeable, bounded-error | deterministic | [`CountMinOp`] |
//! | relay with logged decision (Fig. 2/3 workload) | stateless | random non-deterministic | [`StampedRelay`] |
//! | relay with *output-visible* random tag (chaos workload) | stateless | random non-deterministic | [`RandomTagger`] |
//! | Bernoulli sample / Monte-Carlo (§1's random class) | stateless/stateful | random non-deterministic | [`Sample`], [`MonteCarloPi`] |
//! | sliding count window (extension) | stateful | order-sensitive | [`SlidingWindow`] |
//!
//! All operators keep their state in registered cells, so each runs
//! unchanged in plain or speculative configuration.

#![warn(missing_docs)]

mod basic;
mod classifier;
mod join;
mod sample;
mod sketch_op;
mod sliding;
mod window;

pub use basic::{busy_work, Enrich, Filter, Map, RandomTagger, Split, StampedRelay, Union};
pub use classifier::Classifier;
pub use join::Join;
pub use sample::{MonteCarloPi, Sample};
pub use sketch_op::{CountMinOp, SketchOp};
pub use sliding::SlidingWindow;
pub use window::{CountWindow, SystemTimeWindow, TimeWindow, WindowAgg};

//! The classifier of §3.1: the paper's worked example of fine-grained
//! speculation.

use streammine_common::event::{Event, Value};
use streammine_core::{OpCtx, Operator, SetupCtx, StateHandle};
use streammine_stm::StmAbort;

use parking_lot::Mutex;

/// Assigns each event to one of `classes` classes (by payload hash) and
/// outputs `(class, count)` with the class's running count.
///
/// Each class counter is its own state cell, so two events hitting
/// *different* classes do not conflict — the exact situation of §3.1 where
/// a final event `E2` can overtake a speculative `E1′` because "`E1′`
/// modified another class". With a single class, every pair of events
/// conflicts (Figure 5's no-parallelism extreme).
pub struct Classifier {
    classes: usize,
    counters: Mutex<Vec<StateHandle<i64>>>,
}

impl Classifier {
    /// Creates a classifier over `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "classifier needs at least one class");
        Classifier { classes, counters: Mutex::new(Vec::new()) }
    }

    /// Which class a payload falls into (stable hash).
    pub fn class_of(&self, payload: &Value) -> usize {
        (payload.stable_hash() % self.classes as u64) as usize
    }
}

impl Operator for Classifier {
    fn name(&self) -> &str {
        "classifier"
    }

    fn setup(&self, ctx: &mut SetupCtx<'_>) {
        let mut counters = self.counters.lock();
        counters.clear();
        for _ in 0..self.classes {
            counters.push(ctx.state(0i64));
        }
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        let class = self.class_of(&event.payload);
        let handle = self.counters.lock()[class];
        ctx.update(handle, |c| c + 1)?;
        let count = *ctx.get(handle)?;
        ctx.emit(Value::record(vec![Value::Int(class as i64), Value::Int(count)]));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use streammine_core::{GraphBuilder, LoggingConfig, OperatorConfig};

    #[test]
    fn counts_per_class_accumulate() {
        let mut b = GraphBuilder::new();
        let c = b.add_operator(Classifier::new(1), OperatorConfig::plain());
        let src = b.source_into(c).unwrap();
        let sink = b.sink_from(c).unwrap();
        let running = b.build().unwrap().start();
        for i in 0..5 {
            running.source(src).push(Value::Int(i));
        }
        assert!(running.sink(sink).wait_final(5, Duration::from_secs(5)));
        let counts: Vec<i64> = running
            .sink(sink)
            .final_events()
            .iter()
            .filter_map(|e| e.payload.field(1).and_then(Value::as_i64))
            .collect();
        assert_eq!(counts, vec![1, 2, 3, 4, 5]);
        running.shutdown();
    }

    #[test]
    fn speculative_classifier_matches_plain() {
        let run = |config: OperatorConfig| -> Vec<Value> {
            let mut b = GraphBuilder::new();
            let c = b.add_operator(Classifier::new(4), config);
            let src = b.source_into(c).unwrap();
            let sink = b.sink_from(c).unwrap();
            let running = b.build().unwrap().start();
            for i in 0..20 {
                running.source(src).push(Value::Int(i));
            }
            assert!(running.sink(sink).wait_final(20, Duration::from_secs(10)));
            let out =
                running.sink(sink).final_events_by_id().into_iter().map(|e| e.payload).collect();
            running.shutdown();
            out
        };
        let plain = run(OperatorConfig::plain());
        let spec =
            run(OperatorConfig::speculative(LoggingConfig::simulated(Duration::from_micros(300))));
        assert_eq!(plain, spec, "speculative execution must not change outputs");
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_panics() {
        let _ = Classifier::new(0);
    }
}

//! # StreamMine-RS
//!
//! A speculation-based, low-latency, fault-tolerant distributed stream
//! processing framework — a from-scratch Rust reproduction of
//! *"Minimizing Latency in Fault-Tolerant Distributed Stream Processing
//! Systems"* (Brito, Fetzer, Felber; ICDCS 2009).
//!
//! The facade re-exports every subsystem:
//!
//! * [`stm`] — the speculation-aware software transactional memory (open
//!   transactions, dependency tracking, cascade aborts, ordered commits);
//! * [`core`] — the engine: operator graphs, speculative event emission,
//!   determinant logging, precise recovery;
//! * [`operators`] — the standard operator library;
//! * [`storage`] — simulated stable storage (disks, the N+1-thread decision
//!   logger, checkpoints);
//! * [`net`] — simulated links with replay and failure injection;
//! * [`sketch`] — count/count-min sketches and top-k;
//! * [`recovery`] — baseline recovery protocols for comparison;
//! * [`chaos`] — deterministic fault injection: seeded fault plans and a
//!   scheduler driving crashes, link severs, and disk faults;
//! * [`obs`] — the observability layer: lock-free metrics registry,
//!   ring-buffered speculation-lifecycle journal, Prometheus/JSON export;
//! * [`common`] — events, codec, clocks, RNG, statistics.
//!
//! # Quickstart
//!
//! ```
//! use std::time::Duration;
//! use streammine::common::event::{Event, Value};
//! use streammine::core::{GraphBuilder, LoggingConfig, OpCtx, Operator, OperatorConfig};
//! use streammine::stm::StmAbort;
//!
//! struct Double;
//! impl Operator for Double {
//!     fn process(&self, ctx: &mut OpCtx<'_, '_>, ev: &Event) -> Result<(), StmAbort> {
//!         ctx.emit(Value::Int(ev.payload.as_i64().unwrap_or(0) * 2));
//!         Ok(())
//!     }
//! }
//!
//! // A speculative operator: events flow on before its log is stable.
//! let mut b = GraphBuilder::new();
//! let op = b.add_operator(
//!     Double,
//!     OperatorConfig::speculative(LoggingConfig::simulated(Duration::from_millis(1))),
//! );
//! let src = b.source_into(op).unwrap();
//! let sink = b.sink_from(op).unwrap();
//! let g = b.build().unwrap().start();
//! g.source(src).push(Value::Int(21));
//! assert!(g.sink(sink).wait_final(1, Duration::from_secs(5)));
//! assert_eq!(g.sink(sink).final_events()[0].payload, Value::Int(42));
//! g.shutdown();
//! ```

pub use streammine_chaos as chaos;
pub use streammine_common as common;
pub use streammine_core as core;
pub use streammine_net as net;
pub use streammine_obs as obs;
pub use streammine_operators as operators;
pub use streammine_recovery as recovery;
pub use streammine_sketch as sketch;
pub use streammine_stm as stm;
pub use streammine_storage as storage;

//! Distributed recovery-time extraction: SIGKILL a mid-chain worker under
//! a live stream and measure, per trial, how long the control plane takes
//! to notice (detect), how long until the sink sees its first post-kill
//! output (first_output), and how long until the stream fully drains
//! (complete). Writes `BENCH_recovery.json` for the CI artifact and exits
//! non-zero if any trial blows the wall-clock budget — a recovery-latency
//! smoke gate, not a micro-benchmark.
//!
//! With `--timeline`, each trial additionally captures the launcher's
//! structured [`RecoveryTimeline`] and the JSON gains a per-phase
//! breakdown (detect → fence → respawn → handshake → first output →
//! drain) plus the raw timelines.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use streammine::common::event::Value;
use streammine::core::dist::{Cluster, ClusterSpec, NodeSpec};
use streammine::obs::RecoveryTimeline;

const HOPS: usize = 3;
const PRE_KILL: usize = 50;
const POST_KILL: usize = 50;
const PACE: Duration = Duration::from_millis(2);
const TRIALS: usize = 5;
/// Per-trial budget: detection is lease-bounded (250 ms) and replay is
/// ~100 events over loopback; anything near this ceiling is a hang.
const TRIAL_BUDGET: Duration = Duration::from_secs(30);

struct Trial {
    detect_ms: f64,
    first_output_ms: f64,
    complete_ms: f64,
    timeline: Option<RecoveryTimeline>,
}

fn worker_bin() -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    let bin = exe.parent().expect("bin dir").join("streammine_worker");
    assert!(
        bin.exists(),
        "worker binary not found at {} — run `cargo build --release --bin streammine_worker`",
        bin.display()
    );
    bin
}

fn run_trial(bin: PathBuf) -> Result<Trial, String> {
    let spec = ClusterSpec::new(vec![NodeSpec::logged("random-tagger", 200, 1); HOPS], bin);
    let cluster = Cluster::launch(spec)?;
    if !cluster.wait_connected(Duration::from_secs(20)) {
        return Err("cluster never wired up".into());
    }

    for i in 0..PRE_KILL {
        cluster.source().push(Value::Int(i as i64));
        std::thread::sleep(PACE);
    }
    if !cluster.sink().wait_final(PRE_KILL, TRIAL_BUDGET) {
        return Err(format!("pre-kill stream stuck at {}", cluster.sink().final_count()));
    }
    let at_kill = cluster.sink().final_count();

    let killed = Instant::now();
    cluster.kill_worker(1);
    let mut detect_ms = None;
    let mut first_output_ms = None;
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in PRE_KILL..PRE_KILL + POST_KILL {
                cluster.source().push(Value::Int(i as i64));
                std::thread::sleep(PACE);
            }
        });
        let deadline = killed + TRIAL_BUDGET;
        while Instant::now() < deadline && (detect_ms.is_none() || first_output_ms.is_none()) {
            if detect_ms.is_none() && cluster.crashes_detected() > 0 {
                detect_ms = Some(killed.elapsed().as_secs_f64() * 1e3);
            }
            if first_output_ms.is_none() && cluster.sink().final_count() > at_kill {
                first_output_ms = Some(killed.elapsed().as_secs_f64() * 1e3);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    });
    let complete = cluster.sink().wait_final(PRE_KILL + POST_KILL, TRIAL_BUDGET);
    let complete_ms = killed.elapsed().as_secs_f64() * 1e3;
    cluster.shutdown();
    let timeline = cluster.recovery_timelines().into_iter().next();

    match (detect_ms, first_output_ms, complete) {
        (Some(detect_ms), Some(first_output_ms), true) => {
            Ok(Trial { detect_ms, first_output_ms, complete_ms, timeline })
        }
        (None, _, _) => Err("kill never detected within budget".into()),
        (_, None, _) => Err("no post-kill output within budget".into()),
        (_, _, false) => Err(format!("stream never drained (gave up after {complete_ms:.0} ms)")),
    }
}

fn stat(values: &mut [f64], q: f64) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
    let idx = ((values.len() - 1) as f64 * q).round() as usize;
    values[idx]
}

/// Extracts one phase's µs-delta from a timeline, `None` if either
/// endpoint was never stamped.
type PhaseDelta = fn(&RecoveryTimeline) -> Option<u64>;

/// `(p50, max)` of the µs-delta between two timeline phases, in ms,
/// across every trial that stamped both phases.
fn phase_stats(
    trials: &[Trial],
    delta: impl Fn(&RecoveryTimeline) -> Option<u64>,
) -> Option<(f64, f64)> {
    let mut values: Vec<f64> = trials
        .iter()
        .filter_map(|t| t.timeline.as_ref())
        .filter_map(&delta)
        .map(|us| us as f64 / 1e3)
        .collect();
    if values.is_empty() {
        return None;
    }
    Some((stat(&mut values, 0.5), stat(&mut values, 1.0)))
}

fn main() {
    let timeline_mode = std::env::args().any(|a| a == "--timeline");
    let bin = worker_bin();
    let mut trials = Vec::new();
    for t in 0..TRIALS {
        match run_trial(bin.clone()) {
            Ok(trial) => {
                println!(
                    "trial {t}: detect {:.1} ms, first output {:.1} ms, complete {:.1} ms",
                    trial.detect_ms, trial.first_output_ms, trial.complete_ms
                );
                trials.push(trial);
            }
            Err(e) => {
                eprintln!("trial {t} FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut detect: Vec<f64> = trials.iter().map(|t| t.detect_ms).collect();
    let mut first: Vec<f64> = trials.iter().map(|t| t.first_output_ms).collect();
    let mut complete: Vec<f64> = trials.iter().map(|t| t.complete_ms).collect();
    let mut json = String::from(
        "{\n  \"scenario\": \"sigkill worker 1 of 3, 100-event stream, 2 ms pacing\",\n",
    );
    json.push_str(&format!("  \"trials\": {},\n", trials.len()));
    json.push_str(&format!(
        "  \"detect_ms\": {{\"p50\": {:.2}, \"max\": {:.2}}},\n",
        stat(&mut detect, 0.5),
        stat(&mut detect, 1.0)
    ));
    json.push_str(&format!(
        "  \"first_output_ms\": {{\"p50\": {:.2}, \"max\": {:.2}}},\n",
        stat(&mut first, 0.5),
        stat(&mut first, 1.0)
    ));
    json.push_str(&format!(
        "  \"complete_ms\": {{\"p50\": {:.2}, \"max\": {:.2}}}{}\n",
        stat(&mut complete, 0.5),
        stat(&mut complete, 1.0),
        if timeline_mode { "," } else { "" }
    ));
    if timeline_mode {
        if trials.iter().any(|t| t.timeline.is_none()) {
            eprintln!("--timeline: a trial produced no recovery timeline");
            std::process::exit(1);
        }
        let phases: [(&str, PhaseDelta); 5] = [
            ("detect_to_fence_ms", |t| Some(t.fence_us - t.detect_us)),
            ("fence_to_respawn_ms", |t| Some(t.respawn_us - t.fence_us)),
            ("respawn_to_handshake_ms", |t| t.handshake_us.map(|h| h - t.respawn_us)),
            ("handshake_to_first_output_ms", |t| {
                t.handshake_us.zip(t.first_output_us).map(|(h, f)| f - h)
            }),
            ("first_output_to_drain_ms", |t| t.first_output_us.zip(t.drain_us).map(|(f, d)| d - f)),
        ];
        json.push_str("  \"phases\": {\n");
        let lines: Vec<String> = phases
            .iter()
            .filter_map(|(name, delta)| {
                phase_stats(&trials, delta).map(|(p50, max)| {
                    format!("    \"{name}\": {{\"p50\": {p50:.2}, \"max\": {max:.2}}}")
                })
            })
            .collect();
        json.push_str(&lines.join(",\n"));
        json.push_str("\n  },\n");
        let raw: Vec<String> = trials
            .iter()
            .filter_map(|t| t.timeline.as_ref())
            .map(|t| format!("    {}", t.to_json()))
            .collect();
        json.push_str(&format!("  \"timelines\": [\n{}\n  ]\n}}\n", raw.join(",\n")));
    } else {
        json.push_str("}\n");
    }
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    println!("\nwrote BENCH_recovery.json:\n{json}");
}

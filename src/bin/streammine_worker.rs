//! The distributed worker binary: one operator node per OS process.
//!
//! Launched by `streammine::core::dist::Cluster` with its topology slice
//! in the `STREAMMINE_WORKER_SPEC` environment variable (see
//! `WorkerSpec`). The registry below maps the spec's operator names onto
//! the standard operator library; binaries embedding custom operators
//! build their own registry and call `worker_main` the same way.

use std::sync::Arc;

use streammine::core::dist::{worker_main, OperatorRegistry};
use streammine::operators::{CountMinOp, Map, RandomTagger, StampedRelay};

fn main() {
    let registry = OperatorRegistry::new()
        .with(RandomTagger::NAME, || Arc::new(RandomTagger))
        .with("stamped-relay", || Arc::new(StampedRelay::new()))
        .with("identity", || Arc::new(Map::new(|v| v.clone())))
        // Fixed hash seed: every incarnation (and the fault-free
        // baseline) must place keys in the same counters.
        .with("count-min", || {
            Arc::new(CountMinOp::new(256, 4, 11, std::time::Duration::ZERO).stamped())
        });
    std::process::exit(worker_main(&registry));
}

//! Approximate-vs-precise recovery comparison on one fault schedule.
//!
//! One checkpointed count-min operator (5 ms of work per event, stamped
//! with a logged random draw) is crashed mid-stream and recovered once in
//! *precise* mode (checkpoint restore + full suffix replay through the
//! operator) and once in *approximate* mode (stale-snapshot resume, the
//! replay suffix skipped and charged to the error budget). Per mode the
//! run measures crash-to-first-output and crash-to-drain, plus the
//! steady-state final latency before the fault; the approximate run also
//! reports its measured deviation from a fault-free baseline against the
//! declared `ε·N` allowance and the budget left afterwards.
//!
//! Writes `BENCH_approx.json` for the CI artifact and exits non-zero if
//! approximate recovery fails to beat precise to first output, if the
//! deviation breaks the bound, or if the budget escalated (the scenario
//! is sized so the stale resume is admitted).

use std::time::{Duration, Instant};

use streammine::chaos::verify_bounded_divergence;
use streammine::common::event::Value;
use streammine::common::ids::OperatorId;
use streammine::core::{GraphBuilder, LoggingConfig, OperatorConfig};
use streammine::obs::Labels;
use streammine::operators::CountMinOp;
use streammine::sketch::ErrorBound;

const EVENTS: usize = 160;
const CRASH_AT: usize = 120;
const CHECKPOINT_EVERY: u64 = 32;
/// Busy work per event: what precise replay re-pays for the suffix and
/// approximate resume skips. Sized so the 24-event replay gap (~120 ms)
/// clearly exceeds the fixed crash/recover overhead shared by both modes.
const WORK: Duration = Duration::from_millis(5);
const LOG_LATENCY: Duration = Duration::from_micros(500);
const EPSILON: f64 = 0.25;
const DELTA: f64 = 0.05;
const TRIALS: usize = 3;
const BUDGET: Duration = Duration::from_secs(60);

struct Run {
    estimates: Vec<u64>,
    first_output_ms: f64,
    complete_ms: f64,
    steady_final_us: f64,
    lost: u64,
    remaining: u64,
    escalations: u64,
}

fn keys(n: usize) -> Vec<i64> {
    (0..n).map(|i| (i % 13) as i64).collect()
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

fn run(approximate: bool, crash: bool) -> Run {
    let input = keys(EVENTS);
    let mut b = GraphBuilder::new();
    let mut cfg = OperatorConfig::logged(LoggingConfig::simulated(LOG_LATENCY))
        .with_checkpoint_every(CHECKPOINT_EVERY);
    if approximate {
        cfg = cfg.with_approximate_recovery(ErrorBound::new(EPSILON, DELTA));
    }
    // Fixed hash seed: all runs must place keys in the same counters.
    let op = b.add_operator(CountMinOp::new(64, 4, 11, WORK).stamped(), cfg);
    let src = b.source_into(op).unwrap();
    let sink = b.sink_from(op).unwrap();
    let running = b.build().unwrap().start();
    let opid = OperatorId::new(0);

    let pre = if crash { CRASH_AT } else { EVENTS };
    for k in &input[..pre] {
        running.source(src).push(Value::Int(*k));
    }
    assert!(
        running.sink(sink).wait_final(pre, BUDGET),
        "pre-crash stream stuck at {}/{pre}",
        running.sink(sink).final_count()
    );
    let steady_final_us = mean(&running.sink(sink).final_latencies_us());

    let (first_output_ms, complete_ms) = if crash {
        let crashed = Instant::now();
        running.crash(opid);
        running.recover(opid);
        // Let the resume admission land before offering new load — the
        // same settle for both modes, inside the measured window — so the
        // comparison times the recovery protocol, not a push/replay race.
        std::thread::sleep(Duration::from_millis(2));
        for k in &input[CRASH_AT..] {
            running.source(src).push(Value::Int(*k));
        }
        let deadline = crashed + BUDGET;
        let mut first = None;
        while first.is_none() && Instant::now() < deadline {
            if running.sink(sink).final_count() > CRASH_AT {
                first = Some(crashed.elapsed().as_secs_f64() * 1e3);
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let first = first.expect("no post-crash output within budget");
        assert!(
            running.sink(sink).wait_final(EVENTS, BUDGET),
            "post-crash stream stuck at {}/{EVENTS}\n{}",
            running.sink(sink).final_count(),
            running.journal_dump()
        );
        (first, crashed.elapsed().as_secs_f64() * 1e3)
    } else {
        (0.0, 0.0)
    };

    let finals = running.sink(sink).final_events_by_id();
    assert_eq!(finals.len(), EVENTS, "duplicate or missing outputs");
    let estimates = finals
        .iter()
        .map(|e| e.payload.field(1).and_then(Value::as_i64).expect("Record[key, est]") as u64)
        .collect();
    let snap = running.metrics();
    let out = Run {
        estimates,
        first_output_ms,
        complete_ms,
        steady_final_us,
        lost: snap.gauge("recovery.error_budget.lost", Labels::op(0)).unwrap_or(0) as u64,
        remaining: snap.gauge("recovery.error_budget.remaining", Labels::op(0)).unwrap_or(0) as u64,
        escalations: snap.counter("recovery.escalations", Labels::op(0)).unwrap_or(0),
    };
    running.shutdown();
    out
}

/// Median crash-to-first-output across trials; the trial list is returned
/// so the last trial's estimates/budget feed the deviation check (the
/// workload is deterministic, so every trial agrees on those).
fn trials(approximate: bool) -> (f64, Vec<Run>) {
    let runs: Vec<Run> = (0..TRIALS).map(|_| run(approximate, true)).collect();
    let mut firsts: Vec<f64> = runs.iter().map(|r| r.first_output_ms).collect();
    firsts.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
    (firsts[firsts.len() / 2], runs)
}

fn main() {
    let bound = ErrorBound::new(EPSILON, DELTA);
    eprintln!("baseline (fault-free, approximate config)...");
    let baseline = run(true, false);
    eprintln!("precise mode, {TRIALS} trials...");
    let (precise_first, precise_runs) = trials(false);
    eprintln!("approximate mode, {TRIALS} trials...");
    let (approx_first, approx_runs) = trials(true);
    let precise = precise_runs.last().expect("trials ran");
    let approx = approx_runs.last().expect("trials ran");

    let report =
        verify_bounded_divergence(bound, EVENTS as u64, &baseline.estimates, &approx.estimates)
            .unwrap_or_else(|e| {
                eprintln!("FAIL: approximate run broke its bound: {e}");
                std::process::exit(1);
            });
    if approx.escalations > 0 {
        eprintln!(
            "FAIL: budget escalated {} time(s) — the scenario must admit the stale resume",
            approx.escalations
        );
        std::process::exit(1);
    }
    if precise.estimates.iter().zip(&baseline.estimates).any(|(p, b)| p != b) {
        eprintln!("FAIL: precise recovery diverged from the fault-free baseline");
        std::process::exit(1);
    }

    let json = format!(
        "{{\n  \"scenario\": \"count-min + 5 ms/event, crash at {CRASH_AT}/{EVENTS}, \
         checkpoint every {CHECKPOINT_EVERY}\",\n\
         \x20 \"bound\": {{\"epsilon\": {EPSILON}, \"delta\": {DELTA}}},\n\
         \x20 \"trials\": {TRIALS},\n\
         \x20 \"precise\": {{\"first_output_ms\": {:.2}, \"complete_ms\": {:.2}, \
         \"steady_final_us\": {:.1}}},\n\
         \x20 \"approximate\": {{\"first_output_ms\": {:.2}, \"complete_ms\": {:.2}, \
         \"steady_final_us\": {:.1}, \"deviation\": {}, \"allowed\": {}, \
         \"budget_lost\": {}, \"budget_remaining\": {}}},\n\
         \x20 \"first_output_speedup\": {:.2}\n}}\n",
        precise_first,
        precise.complete_ms,
        precise.steady_final_us,
        approx_first,
        approx.complete_ms,
        approx.steady_final_us,
        report.max_deviation,
        report.allowed,
        approx.lost,
        approx.remaining,
        precise_first / approx_first,
    );
    std::fs::write("BENCH_approx.json", &json).expect("write BENCH_approx.json");
    println!("wrote BENCH_approx.json:\n{json}");

    if approx_first >= precise_first {
        eprintln!(
            "FAIL: approximate recovery ({approx_first:.2} ms to first output) did not beat \
             precise ({precise_first:.2} ms) on the same fault schedule"
        );
        std::process::exit(1);
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset this workspace's micro-benchmarks use —
//! `Criterion`, `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock runner: warm up, then time batches until the measurement
//! window elapses, and print mean ns/iter. No statistical analysis, HTML
//! reports, or outlier rejection.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a benchmarked value away.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Sets how long each benchmark measures for.
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    /// Sets how long each benchmark warms up for.
    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.warm_up_time = dur;
        self
    }

    /// Sets the target number of samples (used only to bound batch sizes).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { criterion: self, name }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (warm, measure, samples) = (self.warm_up_time, self.measurement_time, self.sample_size);
        run_one(&id.to_string(), warm, measure, samples, f);
        self
    }
}

/// Identifier for a parameterized benchmark: `name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.criterion.measurement_time = dur;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.criterion.sample_size,
            f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing-only in this stand-in).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    fn with_budget(budget: Duration) -> Self {
        Bencher { iters: 0, elapsed: Duration::ZERO, budget }
    }

    /// Times repeated calls of `routine`; total iterations and elapsed time
    /// are accumulated for the caller to report.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        self.iters += 1;
        self.elapsed += once;
        // Batch so cheap routines are not dominated by clock reads: target
        // ~1ms batches based on the first observation.
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 1 << 20) as u64;
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters += batch;
        }
    }
}

fn run_one<F>(label: &str, warm_up: Duration, measure: Duration, _samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up pass: same closure, shorter budget, result discarded.
    let mut warm = Bencher::with_budget(warm_up.min(Duration::from_millis(200)));
    f(&mut warm);
    let mut b = Bencher::with_budget(measure.min(Duration::from_secs(2)));
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
    println!("  {label}: {ns:.1} ns/iter ({} iters)", b.iters);
}

/// Defines a group function running each target with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_iterations() {
        let mut b = Bencher::with_budget(Duration::from_millis(5));
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(b.iters, count);
        assert!(b.iters >= 1);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("t");
        group.sample_size(10);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("append", 3).to_string(), "append/3");
    }
}

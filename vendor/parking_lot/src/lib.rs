//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, std-backed implementation of exactly the
//! API subset it uses: `Mutex` (non-poisoning `lock()`), `Condvar` with
//! `wait(&mut guard)` / `wait_for(&mut guard, timeout)`, and the guard
//! types. Semantics match parking_lot's documented behaviour for this
//! subset; poisoned std locks are transparently recovered since
//! parking_lot has no poisoning.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { guard: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so [`Condvar`] can
/// temporarily take ownership of the std guard during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's `&mut guard` API.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present outside wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present outside wait");
        let (g, res) = self.inner.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiting thread; returns whether one was woken (parking_lot
    /// returns a bool here; std cannot tell, so report `true`).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { guard: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { guard: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(3);
        assert_eq!(*l.read(), 3);
        *l.write() = 4;
        assert_eq!(*l.read(), 4);
    }
}

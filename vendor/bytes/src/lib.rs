//! Offline stand-in for the `bytes` crate.
//!
//! Provides `Vec<u8>`-backed `Bytes` / `BytesMut` plus the `Buf` / `BufMut`
//! trait subset the workspace codec uses (little-endian integer accessors,
//! slice reads/writes). No shared-slice refcounting: `freeze` simply
//! transfers ownership, which is all the codec needs.

use std::fmt;
use std::ops::Deref;

/// Read side: a cursor over bytes, advancing as values are consumed.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;
    /// Reads a little-endian IEEE-754 `f64`.
    fn get_f64_le(&mut self) -> f64;
    /// Fills `dst` from the buffer, advancing past the copied bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

macro_rules! get_le {
    ($self:ident, $ty:ty) => {{
        const N: usize = std::mem::size_of::<$ty>();
        let mut arr = [0u8; N];
        arr.copy_from_slice(&$self[..N]);
        *$self = &$self[N..];
        <$ty>::from_le_bytes(arr)
    }};
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        get_le!(self, u16)
    }

    fn get_u32_le(&mut self) -> u32 {
        get_le!(self, u32)
    }

    fn get_u64_le(&mut self) -> u64 {
        get_le!(self, u64)
    }

    fn get_i64_le(&mut self) -> i64 {
        get_le!(self, i64)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(get_le!(self, u64).to_le_bytes())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write side: append-only growable byte sink.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Appends a little-endian IEEE-754 `f64`.
    fn put_f64_le(&mut self, v: f64);
    /// Appends a slice verbatim.
    fn put_slice(&mut self, src: &[u8]);
}

/// Growable, uniquely-owned byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { buf: self.buf }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Clears the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.buf
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

/// Immutable byte buffer produced by [`BytesMut::freeze`].
#[derive(Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    buf: Vec<u8>,
}

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Self {
        Bytes { buf }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.buf {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get_roundtrip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0xAB);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX);
        b.put_i64_le(i64::MIN);
        b.put_f64_le(3.25);
        b.put_slice(&[1, 2, 3]);

        let v = b.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX);
        assert_eq!(r.get_i64_le(), i64::MIN);
        assert_eq!(r.get_f64_le(), 3.25);
        let mut out = [0u8; 3];
        r.copy_to_slice(&mut out);
        assert_eq!(out, [1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut b = BytesMut::new();
        b.put_slice(b"hello");
        let frozen = b.freeze();
        assert_eq!(&*frozen, b"hello");
        assert_eq!(frozen.len(), 5);
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use:
//! [`Strategy`] with `prop_map` / `prop_recursive` / `boxed`, `any` for the
//! primitive types, range and tuple and `&str`-pattern strategies,
//! [`collection::vec`], and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_oneof!` macros.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name, so runs are reproducible) and
//! there is **no shrinking** — a failure reports the case number and
//! message only. That trades minimal counterexamples for zero dependencies,
//! which is the right trade in a network-less build environment.

pub mod strategy {
    use std::fmt;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// Deterministic RNG (splitmix64) driving all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: values up to `depth` levels deep,
        /// where each level is produced by `recurse` from the previous
        /// level's strategy. `_desired_size` and `_expected_branch_size`
        /// are accepted for API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                cur = Union::new(vec![leaf.clone(), recurse(cur).boxed()]).boxed();
            }
            cur
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    impl<T> fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("BoxedStrategy(..)")
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies of one value type.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.next_below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    impl<T> fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical full-range strategy, via [`any`].
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),+) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only: codec roundtrips compare with PartialEq.
            (rng.next_f64() - 0.5) * 2e12
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            random_char(rng)
        }
    }

    /// Strategy for an [`Arbitrary`] type.
    #[derive(Debug, Clone)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T`, e.g. `any::<i64>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),+) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (start as i128 + off as i128) as $ty
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Alphabet for `&str`-pattern strategies: ASCII plus multibyte
    /// characters so UTF-8 boundary handling gets exercised.
    fn random_char(rng: &mut TestRng) -> char {
        const EXTRA: [char; 8] = ['é', 'ß', 'λ', 'Ж', '中', '日', '€', '𝄞'];
        match rng.next_below(10) {
            0..=7 => {
                // Printable ASCII.
                (0x20 + rng.next_below(0x5F) as u8) as char
            }
            _ => EXTRA[rng.next_below(EXTRA.len() as u64) as usize],
        }
    }

    /// `&str` regex-pattern strategy. Supports the `.{min,max}` form the
    /// workspace uses; any other pattern falls back to short random strings.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_dot_repeat(self).unwrap_or((0, 8));
            let len = min + rng.next_below((max - min + 1) as u64) as usize;
            (0..len).map(|_| random_char(rng)).collect()
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

pub mod collection {
    use std::ops::Range;

    use crate::strategy::{Strategy, TestRng};

    /// Strategy for vectors with element strategy `S` and a size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use std::fmt;

    use crate::strategy::TestRng;

    /// Per-test configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Shrink-iteration cap (accepted for source compatibility with the
        /// real crate; this stub does not shrink).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_shrink_iters: 1024 }
        }
    }

    /// A failed property within one generated case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property: `cases` deterministic RNG streams, panicking on
    /// the first failing case (no shrinking).
    pub fn run<F>(config: &ProptestConfig, test_name: &str, mut property: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(test_name.as_bytes());
        for case in 0..config.cases {
            let mut rng =
                TestRng::from_seed(base ^ (u64::from(case).wrapping_mul(0x5851_F42D_4C95_7F2D)));
            if let Err(e) = property(&mut rng) {
                panic!("proptest '{test_name}' failed at case {case}/{}: {e}", config.cases);
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `arg in strategy` is drawn fresh per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(&config, stringify!($name), |rng| {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), rng); )+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    result
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $( $arg in $strat ),+ ) $body
            )*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "{} (`{:?}` != `{:?}`)",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, "assertion failed: `{:?}` == `{:?}`", left, right);
    }};
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_respects_size_range(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn str_pattern_bounds_length(s in ".{0,24}") {
            prop_assert!(s.chars().count() <= 24);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just(Tree::Leaf(0)),
            any::<i64>().prop_map(Tree::Leaf),
        ]) {
            prop_assert!(matches!(v, Tree::Leaf(_)));
        }

        #[test]
        fn recursion_is_depth_bounded(
            t in any::<i64>().prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            })
        ) {
            prop_assert!(depth(&t) <= 3 + 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        #[test]
        fn config_override_applies(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn same_test_name_is_deterministic() {
        let mut first = Vec::new();
        crate::test_runner::run(
            &ProptestConfig { cases: 5, ..ProptestConfig::default() },
            "determinism",
            |rng| {
                first.push(rng.next_u64());
                Ok(())
            },
        );
        let mut second = Vec::new();
        crate::test_runner::run(
            &ProptestConfig { cases: 5, ..ProptestConfig::default() },
            "determinism",
            |rng| {
                second.push(rng.next_u64());
                Ok(())
            },
        );
        assert_eq!(first, second);
    }
}

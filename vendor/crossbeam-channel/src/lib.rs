//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! Implements the multi-producer multi-consumer channel subset this
//! workspace uses: `unbounded()`, `bounded()`, cloneable
//! `Sender`/`Receiver`, blocking/non-blocking/timed receives,
//! non-blocking `try_send`, and crossbeam's disconnection semantics
//! (recv drains remaining messages after all senders drop; send fails
//! once all receivers drop).
//!
//! Built on a `Mutex<VecDeque>` + two `Condvar`s (one for receivers
//! waiting on messages, one for senders waiting on capacity).
//! StreamMine's channels carry coarse-grained work (whole events or
//! batches), so lock-based MPMC is plenty; the hot-path batching added
//! in the transport layer keeps the per-message cost amortized
//! regardless of channel implementation.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// Wakes receivers when a message is pushed (or senders disconnect).
    cv: Condvar,
    /// Wakes blocked senders when capacity frees up (or receivers drop).
    send_cv: Condvar,
    /// `usize::MAX` for unbounded channels.
    cap: usize,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        send_cv: Condvar::new(),
        cap,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(usize::MAX)
}

/// Creates a bounded MPMC channel holding at most `cap` messages.
/// [`Sender::send`] blocks while the channel is full;
/// [`Sender::try_send`] fails fast with [`TrySendError::Full`].
///
/// # Panics
///
/// Panics when `cap` is zero (rendezvous channels are not supported by
/// this stand-in; nothing in the workspace uses them).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "zero-capacity (rendezvous) channels are not supported");
    channel(cap)
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`]; carries the unsent message.
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(msg) | TrySendError::Disconnected(msg) => msg,
        }
    }

    /// Whether this error is [`TrySendError::Full`].
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }

    /// Whether this error is [`TrySendError::Disconnected`].
    pub fn is_disconnected(&self) -> bool {
        matches!(self, TrySendError::Disconnected(_))
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message was ready.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers when the last clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Appends a message to the queue. On a bounded channel, blocks while
    /// the channel is full until a receiver makes room.
    ///
    /// # Errors
    ///
    /// [`SendError`] carrying the message when all receivers are gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(msg));
        }
        let mut q = self.shared.lock();
        while q.len() >= self.shared.cap {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            q = self.shared.send_cv.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
        q.push_back(msg);
        drop(q);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Non-blocking send: fails fast instead of waiting for capacity.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when a bounded channel is at capacity;
    /// [`TrySendError::Disconnected`] when all receivers are gone. Both
    /// carry the unsent message.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        let mut q = self.shared.lock();
        if q.len() >= self.shared.cap {
            return Err(TrySendError::Full(msg));
        }
        q.push_back(msg);
        drop(q);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// The channel's capacity, or `None` for unbounded channels.
    pub fn capacity(&self) -> Option<usize> {
        (self.shared.cap != usize::MAX).then_some(self.shared.cap)
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they observe the
            // disconnect.
            self.shared.cv.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of a channel. Cloneable (MPMC); each message is
/// delivered to exactly one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// [`RecvError`] when the channel is empty and all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.lock();
        loop {
            if let Some(msg) = q.pop_front() {
                drop(q);
                self.shared.send_cv.notify_one();
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self.shared.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued;
    /// [`TryRecvError::Disconnected`] when additionally all senders are gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.lock();
        if let Some(msg) = q.pop_front() {
            drop(q);
            self.shared.send_cv.notify_one();
            return Ok(msg);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking receive with a timeout.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] on timeout;
    /// [`RecvTimeoutError::Disconnected`] when the channel is empty and all
    /// senders are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.lock();
        loop {
            if let Some(msg) = q.pop_front() {
                drop(q);
                self.shared.send_cv.notify_one();
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .cv
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last receiver gone: wake senders blocked on a full channel so
            // they observe the disconnect instead of waiting forever.
            self.shared.send_cv.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_drains_after_sender_drop() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv().unwrap_err(), RecvError);
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_recv_and_timeout() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 9);
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn bounded_try_send_full_then_disconnected() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(tx.try_send(3).unwrap_err().is_full());
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(rx);
        assert!(tx.try_send(4).unwrap_err().is_disconnected());
    }

    #[test]
    fn bounded_send_blocks_until_recv_makes_room() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks: channel full
            tx.send(3).unwrap();
        });
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        h.join().unwrap();
    }

    #[test]
    fn bounded_send_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(10));
        drop(rx);
        assert!(h.join().unwrap().is_err());
    }

    #[test]
    fn capacity_reporting() {
        let (tx, _rx) = bounded::<u8>(4);
        assert_eq!(tx.capacity(), Some(4));
        let (tx, _rx) = unbounded::<u8>();
        assert_eq!(tx.capacity(), None);
    }

    #[test]
    fn mpmc_each_message_delivered_once() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        let mut all = h.join().unwrap();
        all.extend(got);
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}

//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! Implements the multi-producer multi-consumer unbounded channel subset
//! this workspace uses: `unbounded()`, cloneable `Sender`/`Receiver`,
//! blocking/non-blocking/timed receives, and crossbeam's disconnection
//! semantics (recv drains remaining messages after all senders drop; send
//! fails once all receivers drop).
//!
//! Built on a `Mutex<VecDeque>` + `Condvar`. StreamMine's channels carry
//! coarse-grained work (whole events or batches), so lock-based MPMC is
//! plenty; the hot-path batching added in the transport layer keeps the
//! per-message cost amortized regardless of channel implementation.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    cv: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message was ready.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers when the last clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Appends a message to the queue.
    ///
    /// # Errors
    ///
    /// [`SendError`] carrying the message when all receivers are gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(msg));
        }
        self.shared.lock().push_back(msg);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they observe the
            // disconnect.
            self.shared.cv.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of a channel. Cloneable (MPMC); each message is
/// delivered to exactly one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// [`RecvError`] when the channel is empty and all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.lock();
        loop {
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self.shared.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued;
    /// [`TryRecvError::Disconnected`] when additionally all senders are gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.lock();
        if let Some(msg) = q.pop_front() {
            return Ok(msg);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking receive with a timeout.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] on timeout;
    /// [`RecvTimeoutError::Disconnected`] when the channel is empty and all
    /// senders are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.lock();
        loop {
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .cv
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_drains_after_sender_drop() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv().unwrap_err(), RecvError);
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_recv_and_timeout() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 9);
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn mpmc_each_message_delivered_once() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        let mut all = h.join().unwrap();
        all.extend(got);
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}

//! Fault-tolerant top-k: a count-sketch operator survives a crash with
//! precise recovery — the outputs observed after the failure are exactly
//! the ones a failure-free run would have produced.
//!
//! Run with: `cargo run --example fault_tolerant_topk`

use std::time::Duration;

use streammine::common::event::Value;
use streammine::common::ids::OperatorId;
use streammine::common::rng::DetRng;
use streammine::core::{GraphBuilder, LoggingConfig, OperatorConfig};
use streammine::operators::SketchOp;

fn main() {
    let mut b = GraphBuilder::new();
    let sketch = b.add_operator(
        SketchOp::new(256, 5, 7, Duration::from_micros(100)),
        OperatorConfig::logged(LoggingConfig::simulated(Duration::from_micros(500)))
            .with_checkpoint_every(25),
    );
    let src = b.source_into(sketch).expect("source");
    let sink = b.sink_from(sketch).expect("sink");
    let running = b.build().expect("valid graph").start();
    let op = OperatorId::new(0);

    // A zipf-ish stream of item ids.
    let mut rng = DetRng::seed_from(99);
    println!("streaming 80 events, crashing the sketch operator after 60...");
    for i in 0..60u64 {
        running.source(src).push(Value::Int(rng.next_zipf(50, 1.2) as i64));
        let _ = i;
    }
    assert!(running.sink(sink).wait_final(60, Duration::from_secs(20)));
    let before = running.sink(sink).final_events_by_id();

    println!("CRASH: operator state, in-flight transactions and queues are gone");
    running.crash(op);
    println!("RECOVER: restore checkpoint, replay determinant log, request upstream replay");
    running.recover(op);

    for _ in 60..80u64 {
        running.source(src).push(Value::Int(rng.next_zipf(50, 1.2) as i64));
    }
    assert!(
        running.sink(sink).wait_final(80, Duration::from_secs(30)),
        "stalled at {}/80",
        running.sink(sink).final_count()
    );
    let after = running.sink(sink).final_events_by_id();

    // Precise recovery check: every pre-crash output is byte-identical.
    let mut checked = 0;
    for pre in &before {
        let post = after.iter().find(|e| e.id == pre.id).expect("pre-crash output vanished");
        assert_eq!(post.payload, pre.payload, "output {} diverged across recovery", pre.id);
        checked += 1;
    }
    println!("precise recovery verified: {checked} pre-crash outputs unchanged, 80/80 final");

    // Show the heaviest estimates seen at the end.
    let mut estimates: Vec<(i64, i64)> = after
        .iter()
        .filter_map(|e| Some((e.payload.field(0)?.as_i64()?, e.payload.field(1)?.as_i64()?)))
        .collect();
    estimates.sort_by_key(|(_, est)| -est);
    estimates.dedup_by_key(|(k, _)| *k);
    println!("top-5 heaviest keys by final sketch estimate:");
    for (k, est) in estimates.iter().take(5) {
        println!("  key {k}: ~{est}");
    }
    running.shutdown();
}

//! The §3.1 scenario: an upstream subgraph emits *speculative* events that
//! may later be revised (E1′ → E1″) or confirmed, while final events from
//! another publisher overtake unaffected speculation.
//!
//! Run with: `cargo run --example speculative_upstream`

use std::time::Duration;

use streammine::common::event::Value;
use streammine::core::{GraphBuilder, OperatorConfig};
use streammine::operators::Classifier;

fn main() {
    let mut b = GraphBuilder::new();
    // Many classes: unrelated events almost never collide, so the STM's
    // fine-grained dependency tracking lets final events commit while the
    // speculation is still open — under the paper's aggressive
    // conflict-based commit order (§3.1's E2-overtakes-E1' example).
    let stm = streammine::stm::StmConfig {
        commit_order: streammine::stm::CommitOrder::Conflict,
        ..Default::default()
    };
    let processor =
        b.add_operator(Classifier::new(256), OperatorConfig::speculative_unlogged().with_stm(stm));
    let speculative_feed = b.source_into(processor).expect("speculative publisher");
    let final_feed = b.source_into(processor).expect("final publisher");
    let sink = b.sink_from(processor).expect("consumer");
    let running = b.build().expect("valid graph").start();

    // E1′: a speculative event (its upstream log is not yet stable).
    println!("publisher P1 emits speculative E1' ...");
    let e1 = running.source(speculative_feed).push_speculative(Value::Int(1111));

    // E2: a final event from the other publisher, touching another class.
    println!("publisher P2 emits final E2 ...");
    running.source(final_feed).push(Value::Int(2222));

    // E2's output finalizes without waiting for E1.
    assert!(running.sink(sink).wait_final(1, Duration::from_secs(5)));
    println!(
        "E2's output is final while E1' is still speculative ({} seen, {} final)",
        running.sink(sink).seen_count(),
        running.sink(sink).final_count()
    );

    // E1″: the publisher revises the speculation with different content.
    println!("publisher P1 revises E1' -> E1'' (new payload)...");
    running.source(speculative_feed).revise(e1, 1, Value::Int(3333));
    std::thread::sleep(Duration::from_millis(50));

    // The revision is confirmed: E1''s transaction commits, outputs final.
    println!("publisher P1 confirms E1'' ...");
    running.source(speculative_feed).finalize(e1, 1);
    assert!(running.sink(sink).wait_final(2, Duration::from_secs(5)));

    println!("final outputs at the consumer:");
    for e in running.sink(sink).final_events() {
        println!("  {e}");
    }
    println!("(the classifier output for E1 reflects the *revised* payload 3333)");
    running.shutdown();
}

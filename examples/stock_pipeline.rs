//! The paper's prototypical application (Figure 1): two publishers feed a
//! stateful processor, whose output is enriched and split across consumers.
//!
//! ```text
//! Publisher ─┐
//!            ├─► Processor ─► Enrich ─► Split ─► Consumer A
//! Publisher ─┘   (stateful,    (costly,  (random   Consumer B
//!                 logged,       stateless) routing,
//!                 speculative)             logged)
//! ```
//!
//! Run with: `cargo run --example stock_pipeline`

use std::time::Duration;

use streammine::common::event::Value;
use streammine::common::rng::DetRng;
use streammine::core::{GraphBuilder, LoggingConfig, OperatorConfig};
use streammine::operators::{Classifier, Enrich, Split};

fn main() {
    let log = || LoggingConfig::simulated(Duration::from_millis(5));
    let mut b = GraphBuilder::new();

    // Processor: classifies trades into 16 buckets and counts them —
    // stateful, order-sensitive across the two merged feeds, so its input
    // order is a logged decision. Speculative: results flow on before the
    // log is stable.
    let processor = b.add_operator(Classifier::new(16), OperatorConfig::speculative(log()));
    // Enrich: expensive stateless lookup (e.g. reference data).
    let enrich = b.add_operator(
        Enrich::new(Duration::from_micros(200), |v| {
            Value::record(vec![v.clone(), Value::Str("venue=XETRA".into())])
        }),
        OperatorConfig::plain(),
    );
    // Split: randomized load balancing across two consumers (logged).
    let split = b.add_operator(Split::new(2), OperatorConfig::speculative(log()));
    b.connect(processor, enrich).expect("edge");
    b.connect(enrich, split).expect("edge");

    let feed_a = b.source_into(processor).expect("feed A");
    let feed_b = b.source_into(processor).expect("feed B");
    let consumer_a = b.sink_from(split).expect("consumer A");
    let consumer_b = b.sink_from(split).expect("consumer B");
    let running = b.build().expect("valid graph").start();

    // Two market-data publishers with different symbols.
    let mut rng = DetRng::seed_from(2024);
    let trades = 60;
    for i in 0..trades {
        let price = 100 + (rng.next_below(50) as i64);
        let trade = Value::record(vec![Value::Int(i), Value::Int(price)]);
        if rng.next_bool(0.5) {
            running.source(feed_a).push(trade);
        } else {
            running.source(feed_b).push(trade);
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    // Wait for every trade to reach a consumer as final.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let done = running.sink(consumer_a).final_count() + running.sink(consumer_b).final_count();
        if done >= trades as usize {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "pipeline stalled at {done}/{trades}");
        std::thread::sleep(Duration::from_millis(10));
    }

    let a = running.sink(consumer_a).final_count();
    let bc = running.sink(consumer_b).final_count();
    println!("consumer A received {a} trades, consumer B received {bc} (random split, logged)");
    let lat_a = running.sink(consumer_a).final_latencies_us();
    let lat_b = running.sink(consumer_b).final_latencies_us();
    let all: Vec<f64> = lat_a.iter().chain(lat_b.iter()).copied().collect();
    println!(
        "end-to-end final latency: mean {:.2} ms over {} trades (2 logging hops, written in parallel)",
        all.iter().sum::<f64>() / all.len() as f64 / 1000.0,
        all.len()
    );
    println!("sample enriched output: {}", running.sink(consumer_a).final_events()[0]);
    running.shutdown();
}

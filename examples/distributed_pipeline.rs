//! Multi-process kill-recovery demo.
//!
//! Launches a three-hop `random-tagger` chain as three real OS processes
//! joined by the TCP transport, SIGKILLs the middle worker mid-stream,
//! and shows the control plane detect the crash, fence the dead
//! incarnation, respawn, and replay — with sink output byte-identical to
//! the same chain run in-process with no faults.
//!
//! The run also exercises the cluster telemetry plane: workers push
//! metrics/journal/span reports up the control lane, the launcher serves
//! them at `/cluster/*`, and the demo scrapes its own endpoint mid-run,
//! then writes `OBS_cluster.json`, `OBS_cluster.prom`,
//! `OBS_cluster.trace.json` (the stitched cross-process Chrome trace),
//! and `OBS_cluster.recovery.json` (the structured recovery timeline).
//!
//! ```sh
//! cargo build --bin streammine_worker
//! cargo run --example distributed_pipeline
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use streammine::common::event::Value;
use streammine::core::dist::{Cluster, ClusterSpec, NodeSpec};
use streammine::core::{GraphBuilder, LoggingConfig, OperatorConfig};
use streammine::obs::{timelines_json, validate_chrome_trace, validate_prometheus};
use streammine::operators::RandomTagger;

const HOPS: usize = 3;
const EVENTS: i64 = 40;
const LOG_MICROS: u64 = 200;

/// The worker binary lives next to this example's parent directory
/// (`target/<profile>/streammine_worker`); examples are one level deeper.
fn worker_bin() -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    let profile_dir = exe
        .parent() // target/<profile>/examples
        .and_then(|p| p.parent()) // target/<profile>
        .expect("example binary has no parent directory");
    let bin = profile_dir.join("streammine_worker");
    assert!(
        bin.exists(),
        "worker binary not found at {} — run `cargo build --bin streammine_worker` first",
        bin.display()
    );
    bin
}

/// The ground truth: the same chain, in one process, no faults.
fn reference() -> Vec<Value> {
    let mut b = GraphBuilder::new();
    let cfg =
        || OperatorConfig::logged(LoggingConfig::simulated(Duration::from_micros(LOG_MICROS)));
    let ids: Vec<_> = (0..HOPS).map(|_| b.add_operator(RandomTagger, cfg())).collect();
    for pair in ids.windows(2) {
        b.connect(pair[0], pair[1]).unwrap();
    }
    let src = b.source_into(ids[0]).unwrap();
    let sink = b.sink_from(*ids.last().unwrap()).unwrap();
    let running = b.build().unwrap().start();
    for i in 0..EVENTS {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(EVENTS as usize, Duration::from_secs(30)));
    let out: Vec<Value> =
        running.sink(sink).final_events().into_iter().map(|e| e.payload).collect();
    running.shutdown();
    out
}

/// Minimal HTTP GET against the cluster's own telemetry server.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect telemetry http");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: cluster\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read http response");
    let (head, body) = response.split_once("\r\n\r\n").expect("malformed http response");
    assert!(head.starts_with("HTTP/1.1 200"), "GET {path}: {head}");
    body.to_string()
}

fn main() {
    println!("== in-process reference (no faults) ==");
    let expected = reference();
    println!("   {} events, e.g. {} ... {}", expected.len(), expected[0], expected[39]);

    println!("\n== distributed: {HOPS} worker processes over TCP ==");
    let mut spec = ClusterSpec::new(
        vec![NodeSpec::logged("random-tagger", LOG_MICROS, 1); HOPS],
        worker_bin(),
    );
    spec.trace_one_in = 1; // trace every event: the stitched-trace demo
    let cluster = Cluster::launch(spec).expect("cluster launch");
    assert!(cluster.wait_connected(Duration::from_secs(20)), "cluster never wired up");
    println!("   all {HOPS} workers up, chain wired end to end");
    let server = cluster.serve_http("127.0.0.1:0").expect("telemetry http bind");
    println!("   cluster telemetry at http://{}/cluster/metrics", server.local_addr());

    let kill_at = EVENTS / 2;
    let started = Instant::now();
    for i in 0..EVENTS {
        if i == kill_at {
            println!("   >>> SIGKILL worker 1 (mid-chain) after {} events", kill_at);
            cluster.kill_worker(1);
        }
        cluster.source().push(Value::Int(i));
        std::thread::sleep(Duration::from_millis(5));
    }

    assert!(
        cluster.sink().wait_final(EVENTS as usize, Duration::from_secs(60)),
        "sink only saw {}/{EVENTS} events",
        cluster.sink().final_count()
    );
    let out: Vec<Value> = cluster.sink().final_events().into_iter().map(|e| e.payload).collect();
    println!(
        "   stream complete in {:?}: {} crash detected, {} restart",
        started.elapsed(),
        cluster.crashes_detected(),
        cluster.restarts()
    );

    // Scrape our own cluster endpoint while the run is live, the way an
    // external Prometheus would.
    println!("\n== scraping /cluster/metrics mid-run ==");
    let scraped = http_get(server.local_addr(), "/cluster/metrics");
    let samples = validate_prometheus(&scraped).expect("scraped exposition invalid");
    println!("   scrape ok: {samples} samples, {} bytes", scraped.len());

    cluster.shutdown();
    server.stop();

    // Export the post-run cluster artifacts (final flushes included).
    let prom = cluster.cluster_prometheus();
    validate_prometheus(&prom).expect("cluster prometheus invalid");
    let trace = cluster.cluster_chrome_trace();
    let span_count = validate_chrome_trace(&trace).expect("stitched trace invalid");
    let stitched = cluster.telemetry().cross_process_traces();
    let timelines = cluster.recovery_timelines();
    std::fs::write("OBS_cluster.json", cluster.cluster_json()).expect("write OBS_cluster.json");
    std::fs::write("OBS_cluster.prom", &prom).expect("write OBS_cluster.prom");
    std::fs::write("OBS_cluster.trace.json", &trace).expect("write OBS_cluster.trace.json");
    std::fs::write("OBS_cluster.recovery.json", timelines_json(&timelines))
        .expect("write OBS_cluster.recovery.json");
    println!(
        "   wrote OBS_cluster.{{json,prom,trace.json,recovery.json}}: {span_count} trace \
         events, {} cross-process trace ids, {} recovery timeline(s)",
        stitched.len(),
        timelines.len()
    );

    assert_eq!(out, expected, "recovery changed the output bytes");
    println!(
        "\n== verdict: {} sink events byte-identical to the failure-free reference ==",
        out.len()
    );
    println!("   (every event carries each hop's random tag: identical bytes means every");
    println!("    worker's RNG stream was replayed bit-exactly across a real process kill)");
}

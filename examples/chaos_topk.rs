//! Top-k under chaos: a two-operator pipeline (stamped relay → count
//! sketch) is driven through a *seeded random fault schedule* — node
//! crashes recovered by the supervisor, link severs, delayed acks, disk
//! faults and stalls — and its outputs are verified byte-identical to a
//! failure-free run. The fault timeline is reproducible: re-run with the
//! same seed and the exact same faults fire at the exact same steps.
//!
//! Run with: `cargo run --example chaos_topk` (optionally `SEED=n`)

use std::time::Duration;

use streammine::chaos::{FaultPlan, FaultScheduler, Topology};
use streammine::common::event::Value;
use streammine::common::rng::DetRng;
use streammine::core::{
    GraphBuilder, LoggingConfig, OperatorConfig, Running, SinkId, SourceId, SupervisorConfig,
};
use streammine::operators::{SketchOp, StampedRelay};

const EVENTS: u64 = 120;

fn topk_graph() -> (Running, SourceId, SinkId) {
    let mut b = GraphBuilder::new();
    let relay = b.add_operator(
        StampedRelay::new(),
        OperatorConfig::logged(LoggingConfig::simulated(Duration::from_micros(300))),
    );
    let sketch = b.add_operator(
        SketchOp::new(256, 5, 7, Duration::from_micros(50)).stamped(),
        OperatorConfig::logged(LoggingConfig::simulated(Duration::from_micros(300)))
            .with_checkpoint_every(25),
    );
    b.connect(relay, sketch).expect("connect");
    let src = b.source_into(relay).expect("source");
    let sink = b.sink_from(sketch).expect("sink");
    (b.build().expect("valid graph").start(), src, sink)
}

fn drive(running: &Running, src: SourceId, mut inject: impl FnMut(u64, &Running)) {
    // The same zipf-ish key stream both runs see.
    let mut rng = DetRng::seed_from(99);
    for step in 0..EVENTS {
        inject(step, running);
        running.source(src).push(Value::Int(rng.next_zipf(50, 1.2) as i64));
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn main() {
    let seed: u64 = std::env::var("SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42);

    // ---- Reference: the failure-free run ------------------------------
    let (reference, src, sink) = topk_graph();
    drive(&reference, src, |_, _| {});
    assert!(reference.sink(sink).wait_final(EVENTS as usize, Duration::from_secs(30)));
    let expected = reference.sink(sink).final_events_by_id();
    reference.shutdown();
    println!("reference run: {} outputs", expected.len());

    // ---- Chaos run: same workload under a random fault schedule -------
    let (running, src, sink) = topk_graph();
    let supervisor = running.supervise(SupervisorConfig::aggressive());
    let topo = Topology::probe(&running);
    let plan = FaultPlan::random(seed, EVENTS, &topo);
    println!("fault {plan}");
    let mut sched = FaultScheduler::new(plan);
    drive(&running, src, |step, target| {
        sched.advance(step, target);
    });
    sched.finish(&running);

    assert!(
        running.sink(sink).wait_final(EVENTS as usize, Duration::from_secs(60)),
        "stalled at {}/{EVENTS}",
        running.sink(sink).final_count()
    );
    let got = running.sink(sink).final_events_by_id();

    println!("supervised recovery timeline ({} restarts):", supervisor.restarts());
    for ev in supervisor.events() {
        println!("  {ev}");
    }

    // ---- Equivalence: chaos must be invisible in the outputs ----------
    assert_eq!(got.len(), expected.len());
    let mut checked = 0;
    for (a, b) in got.iter().zip(&expected) {
        assert_eq!(a.id, b.id, "output ids diverged under chaos");
        assert_eq!(a.payload, b.payload, "output {} diverged under chaos", a.id);
        checked += 1;
    }
    println!("precise recovery verified: {checked}/{EVENTS} outputs byte-identical");

    // Show the heaviest estimates seen at the end.
    let mut best = std::collections::BTreeMap::new();
    for e in &got {
        if let (Some(k), Some(est)) =
            (e.payload.field(0).and_then(Value::as_i64), e.payload.field(1).and_then(Value::as_i64))
        {
            let slot = best.entry(k).or_insert(est);
            *slot = (*slot).max(est);
        }
    }
    let mut estimates: Vec<(i64, i64)> = best.into_iter().collect();
    estimates.sort_by_key(|&(_, est)| -est);
    println!("top-5 heaviest keys by final sketch estimate:");
    for (k, est) in estimates.iter().take(5) {
        println!("  key {k}: ~{est}");
    }
    running.shutdown();
}

//! Quickstart: build a tiny speculative pipeline, push events, watch them
//! arrive speculatively and finalize once the decision logs are stable.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use streammine::common::event::{Event, Value};
use streammine::core::{GraphBuilder, LoggingConfig, OpCtx, Operator, OperatorConfig};
use streammine::stm::StmAbort;

/// An operator that tags each event with a random lucky number — a
/// non-deterministic decision the engine logs for precise recovery.
struct LuckyTagger;

impl Operator for LuckyTagger {
    fn name(&self) -> &str {
        "lucky-tagger"
    }

    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        let lucky = ctx.random_below(100);
        ctx.emit(Value::record(vec![event.payload.clone(), Value::Int(lucky as i64)]));
        Ok(())
    }
}

fn main() {
    // Two speculative operators, each logging to a simulated disk with a
    // 5 ms stable-write latency. Speculation lets both logs be written in
    // parallel, so final latency is ~5 ms instead of ~10 ms.
    let log = || LoggingConfig::simulated(Duration::from_millis(5));
    let mut b = GraphBuilder::new();
    let first = b.add_operator(LuckyTagger, OperatorConfig::speculative(log()));
    let second = b.add_operator(LuckyTagger, OperatorConfig::speculative(log()));
    b.connect(first, second).expect("edge");
    let src = b.source_into(first).expect("source");
    let sink = b.sink_from(second).expect("sink");
    let running = b.build().expect("valid graph").start();

    println!("pushing 10 events through 2 speculative logging operators...");
    for i in 0..10 {
        running.source(src).push(Value::Int(i));
        std::thread::sleep(Duration::from_millis(8));
    }
    assert!(running.sink(sink).wait_final(10, Duration::from_secs(10)));

    let spec = running.sink(sink).first_arrival_latencies_us();
    let fin = running.sink(sink).final_latencies_us();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 / 1000.0;
    println!("speculative arrival: {:.2} ms mean", mean(&spec));
    println!(
        "final (logs stable): {:.2} ms mean  (~1 log write, not 2: logs ran in parallel)",
        mean(&fin)
    );
    for e in running.sink(sink).final_events() {
        println!("  {e}");
    }
    running.shutdown();
}

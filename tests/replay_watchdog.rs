//! The replay-request retry watchdog under slow control lanes.
//!
//! A recovering node sends one `ReplayRequest` upstream and watches for
//! progress; if the request (or its answer) is lost it retries with
//! exponential backoff, and the upstream dedups retries it has already
//! answered. These tests pin the protocol's two failure modes under
//! 10–500 ms control-lane delays:
//!
//! * **no premature re-request** — a lane that is merely slow (well under
//!   the 50 ms retry interval) must not trigger a retry at all, and
//! * **no duplicate resends** — when the lane is slow enough that retries
//!   *do* fire, the upstream serves the replay exactly once; answering a
//!   watchdog retry again would deliver every retained frame twice, and
//! * **no stuck backoff** — a recovery request nobody can answer (crash at
//!   the stream tail, checkpoint covering every retained frame) must
//!   disarm after the backoff ramp and reset to the 50 ms interval, so a
//!   second fault on the same edge is detected fresh.
//!
//! Output bytes must be identical to a failure-free run either way.

use std::time::Duration;

use streammine::common::event::{Event, Value};
use streammine::common::ids::OperatorId;
use streammine::core::{GraphBuilder, LoggingConfig, OperatorConfig, Running, SinkId, SourceId};
use streammine::obs::Labels;
use streammine::operators::RandomTagger;

const FAST_LOG: Duration = Duration::from_micros(200);
const BEFORE_CRASH: usize = 12;
const AFTER_CRASH: usize = 4;
const TOTAL: usize = BEFORE_CRASH + AFTER_CRASH;

/// src → tagger → tagger → sink, logged, *no checkpoints*: a crashed node
/// replays its whole input from the upstream's retention buffer.
fn pipeline() -> (Running, SourceId, SinkId) {
    let mut b = GraphBuilder::new();
    let cfg = || OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG));
    let op0 = b.add_operator(RandomTagger, cfg());
    let op1 = b.add_operator(RandomTagger, cfg());
    b.connect(op0, op1).unwrap();
    let src = b.source_into(op0).unwrap();
    let sink = b.sink_from(op1).unwrap();
    (b.build().unwrap().start(), src, sink)
}

/// Like [`pipeline`] but op1 checkpoints every 4 events, so a crash at
/// the stream tail recovers to a position past everything the upstream
/// retains — the replay request is unanswerable.
fn checkpointed_pipeline() -> (Running, SourceId, SinkId) {
    let mut b = GraphBuilder::new();
    let cfg = || OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG));
    let op0 = b.add_operator(RandomTagger, cfg());
    let op1 = b.add_operator(RandomTagger, cfg().with_checkpoint_every(4));
    b.connect(op0, op1).unwrap();
    let src = b.source_into(op0).unwrap();
    let sink = b.sink_from(op1).unwrap();
    (b.build().unwrap().start(), src, sink)
}

fn payloads(events: &[Event]) -> Vec<Value> {
    events.iter().map(|e| e.payload.clone()).collect()
}

fn reference_on(make: fn() -> (Running, SourceId, SinkId)) -> Vec<Value> {
    let (running, src, sink) = make();
    for i in 0..TOTAL {
        running.source(src).push(Value::Int(i as i64));
    }
    assert!(running.sink(sink).wait_final(TOTAL, Duration::from_secs(30)));
    let out = payloads(&running.sink(sink).final_events());
    running.shutdown();
    out
}

fn reference() -> Vec<Value> {
    reference_on(pipeline)
}

/// Crashes op1 behind a control lane that delays every delivery by
/// `ctrl_delay`, recovers it, finishes the stream, and returns
/// `(sink payloads, replay.requests by op1, replay.served by op0)`.
fn run_with_ctrl_delay(ctrl_delay: Duration) -> (Vec<Value>, u64, u64) {
    let (running, src, sink) = pipeline();
    for i in 0..BEFORE_CRASH {
        running.source(src).push(Value::Int(i as i64));
    }
    assert!(running.sink(sink).wait_final(BEFORE_CRASH, Duration::from_secs(30)));

    let op1 = OperatorId::new(1);
    // Window long enough to cover the request and every watchdog retry.
    running.delay_spike_edge_ctrl(0, ctrl_delay, Duration::from_secs(2));
    running.crash(op1);
    running.recover(op1);

    for i in BEFORE_CRASH..TOTAL {
        running.source(src).push(Value::Int(i as i64));
    }
    assert!(
        running.sink(sink).wait_final(TOTAL, Duration::from_secs(60)),
        "recovery stuck at {}/{TOTAL} with {ctrl_delay:?} ctrl lane\n{}",
        running.sink(sink).final_count(),
        running.journal_dump()
    );
    // Let any straggling watchdog retry (already in flight) land before
    // counting, so the dedup assertion sees the complete picture.
    std::thread::sleep(2 * ctrl_delay);
    let snap = running.metrics();
    let requests = snap.counter("replay.requests", Labels::op(1)).unwrap_or(0);
    let served = snap.counter("replay.served", Labels::op(0)).unwrap_or(0);
    let out = payloads(&running.sink(sink).final_events());
    running.shutdown();
    (out, requests, served)
}

#[test]
fn slow_but_sub_retry_lane_causes_no_premature_re_request() {
    let expected = reference();
    let (out, requests, served) = run_with_ctrl_delay(Duration::from_millis(10));
    assert_eq!(
        requests, 1,
        "a 10 ms ctrl lane is far below the 50 ms retry interval: the watchdog re-requested"
    );
    assert_eq!(served, 1, "one request must be served exactly once");
    assert_eq!(out, expected, "recovery changed output bytes");
}

#[test]
fn mid_range_lane_retries_but_upstream_dedups() {
    let expected = reference();
    // 120 ms: the original request is still in flight when the 50 ms
    // watchdog fires, so at least one retry reaches the upstream after
    // the original was already served.
    let (out, requests, served) = run_with_ctrl_delay(Duration::from_millis(120));
    assert!(requests >= 2, "a 120 ms ctrl lane must trip the 50 ms watchdog (got {requests})");
    assert_eq!(
        served, 1,
        "watchdog retries were re-served — duplicate resend ({requests} requests)"
    );
    assert_eq!(out, expected, "recovery changed output bytes");
}

#[test]
fn severely_delayed_lane_backs_off_and_never_duplicates() {
    let expected = reference();
    let (out, requests, served) = run_with_ctrl_delay(Duration::from_millis(500));
    assert!(requests >= 2, "a 500 ms ctrl lane must trip the watchdog (got {requests})");
    // Exponential backoff bounds the retry storm: 50+100+200+400 ms of
    // intervals cover the 500 ms lane with at most 4 retries in flight.
    assert!(requests <= 5, "backoff failed: {requests} requests for a 500 ms lane");
    assert_eq!(
        served, 1,
        "watchdog retries were re-served — duplicate resend ({requests} requests)"
    );
    assert_eq!(out, expected, "recovery changed output bytes");
}

/// Two faults on the same edge, the first at the stream tail. Tail
/// recovery restores a checkpoint that covers everything the upstream
/// ever sent, so the recovery `ReplayRequest` asks for frames nobody
/// retains: the watchdog must ride its backoff ramp, then *stand down*
/// (journal: `replay-watch-disarmed`) with the interval reset — not
/// retry at the 800 ms cap forever. A second, ordinary fault afterwards
/// must be detected at the fresh 50 ms interval and recover
/// byte-identically.
#[test]
fn at_tail_recovery_disarms_watchdog_then_second_fault_detects_fresh() {
    let expected = reference_on(checkpointed_pipeline);
    let (running, src, sink) = checkpointed_pipeline();
    let op1 = OperatorId::new(1);

    // Fault one: crash exactly on a checkpoint boundary (every 4, after
    // 12 events) once the save has had a moment to land.
    for i in 0..BEFORE_CRASH {
        running.source(src).push(Value::Int(i as i64));
    }
    assert!(running.sink(sink).wait_final(BEFORE_CRASH, Duration::from_secs(30)));
    std::thread::sleep(Duration::from_millis(100));
    running.crash(op1);
    running.recover(op1);

    // No new traffic: nothing can answer the request, so only the disarm
    // stops the ramp (50+100+200+400 ms, then capped 800 ms retries trip
    // the stand-down at ~3.2 s).
    std::thread::sleep(Duration::from_millis(4200));
    assert!(
        running.journal_dump().contains("replay-watch-disarmed"),
        "vacuous at-tail replay never disarmed:\n{}",
        running.journal_dump()
    );
    let after_disarm = running.metrics().counter("replay.requests", Labels::op(1)).unwrap_or(0);
    std::thread::sleep(Duration::from_millis(1800));
    let settled = running.metrics().counter("replay.requests", Labels::op(1)).unwrap_or(0);
    assert_eq!(
        settled, after_disarm,
        "watchdog kept retrying an unanswerable replay after the disarm"
    );

    // Fault two: ordinary mid-stream fault on the same edge behind a slow
    // ctrl lane. Frames 12..14 are retained (no checkpoint since), so the
    // replay is answerable — and a reset watch re-detects at 50 ms.
    for i in BEFORE_CRASH..BEFORE_CRASH + 2 {
        running.source(src).push(Value::Int(i as i64));
    }
    assert!(running.sink(sink).wait_final(BEFORE_CRASH + 2, Duration::from_secs(30)));
    let delay = Duration::from_millis(120);
    running.delay_spike_edge_ctrl(0, delay, Duration::from_secs(2));
    running.crash(op1);
    running.recover(op1);
    for i in BEFORE_CRASH + 2..TOTAL {
        running.source(src).push(Value::Int(i as i64));
    }
    assert!(
        running.sink(sink).wait_final(TOTAL, Duration::from_secs(60)),
        "second recovery stuck at {}/{TOTAL}\n{}",
        running.sink(sink).final_count(),
        running.journal_dump()
    );
    std::thread::sleep(2 * delay);
    let second = running.metrics().counter("replay.requests", Labels::op(1)).unwrap_or(0) - settled;
    assert!(
        second >= 2,
        "second fault behind a 120 ms lane sent {second} request(s): the watchdog \
         did not re-arm at the fresh 50 ms interval after the disarm"
    );
    let out = payloads(&running.sink(sink).final_events());
    assert_eq!(out, expected, "double-fault recovery changed output bytes");
    running.shutdown();
}

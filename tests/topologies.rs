//! Non-linear graph topologies: the full Figure-1 shape (merge → process →
//! enrich → split → consumers), diamonds, and fan-in/fan-out correctness,
//! with and without failures.

use std::time::Duration;

use streammine::common::event::Value;
use streammine::common::ids::OperatorId;
use streammine::core::{GraphBuilder, LoggingConfig, OperatorConfig, Running, SinkId, SourceId};
use streammine::operators::{Classifier, Enrich, Map, Split, Union};

const FAST_LOG: Duration = Duration::from_micros(300);

/// The paper's Figure 1: 2 publishers → processor → enrich → split → 2
/// consumers.
fn figure1_graph(speculative: bool) -> (Running, SourceId, SourceId, SinkId, SinkId) {
    let mut b = GraphBuilder::new();
    let cfg = |logged: bool| -> OperatorConfig {
        match (speculative, logged) {
            (true, _) => OperatorConfig::speculative(LoggingConfig::simulated(FAST_LOG)),
            (false, true) => OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG)),
            (false, false) => OperatorConfig::plain(),
        }
    };
    let processor = b.add_operator(Classifier::new(8), cfg(true));
    let enrich = b.add_operator(
        Enrich::new(Duration::from_micros(100), |v| {
            Value::record(vec![v.clone(), Value::Str("x".into())])
        }),
        OperatorConfig::plain(),
    );
    let split = b.add_operator(Split::new(2), cfg(true));
    b.connect(processor, enrich).unwrap();
    b.connect(enrich, split).unwrap();
    let p1 = b.source_into(processor).unwrap();
    let p2 = b.source_into(processor).unwrap();
    let c1 = b.sink_from(split).unwrap();
    let c2 = b.sink_from(split).unwrap();
    (b.build().unwrap().start(), p1, p2, c1, c2)
}

fn total_final(running: &Running, c1: SinkId, c2: SinkId) -> usize {
    running.sink(c1).final_count() + running.sink(c2).final_count()
}

fn wait_total(running: &Running, c1: SinkId, c2: SinkId, n: usize, t: Duration) -> bool {
    let deadline = std::time::Instant::now() + t;
    while total_final(running, c1, c2) < n {
        if std::time::Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    true
}

#[test]
fn figure1_pipeline_delivers_every_event_exactly_once() {
    for speculative in [false, true] {
        let (running, p1, p2, c1, c2) = figure1_graph(speculative);
        for i in 0..20 {
            running.source(p1).push(Value::Int(i * 2));
            running.source(p2).push(Value::Int(i * 2 + 1));
        }
        assert!(
            wait_total(&running, c1, c2, 40, Duration::from_secs(20)),
            "spec={speculative}: {}",
            total_final(&running, c1, c2)
        );
        assert_eq!(total_final(&running, c1, c2), 40);
        running.shutdown();
    }
}

#[test]
fn figure1_survives_processor_crash() {
    let (running, p1, p2, c1, c2) = figure1_graph(false);
    for i in 0..15 {
        running.source(p1).push(Value::Int(i * 2));
        running.source(p2).push(Value::Int(i * 2 + 1));
    }
    assert!(wait_total(&running, c1, c2, 30, Duration::from_secs(20)));
    let before: Vec<_> = running
        .sink(c1)
        .final_events_by_id()
        .into_iter()
        .chain(running.sink(c2).final_events_by_id())
        .collect();

    let processor = OperatorId::new(0);
    running.crash(processor);
    running.recover(processor);
    for i in 15..20 {
        running.source(p1).push(Value::Int(i * 2));
    }
    assert!(
        wait_total(&running, c1, c2, 35, Duration::from_secs(30)),
        "stalled at {}",
        total_final(&running, c1, c2)
    );
    let after: Vec<_> = running
        .sink(c1)
        .final_events_by_id()
        .into_iter()
        .chain(running.sink(c2).final_events_by_id())
        .collect();
    for pre in &before {
        let post = after.iter().find(|e| e.id == pre.id).expect("event vanished");
        assert_eq!(post.payload, pre.payload, "{} diverged", pre.id);
    }
    running.shutdown();
}

#[test]
fn diamond_topology_rejoins_both_branches() {
    // src → split → (map ×10 | map ×100) → union → sink: every input
    // appears exactly once, scaled by whichever branch it took.
    let mut b = GraphBuilder::new();
    let split =
        b.add_operator(Split::new(2), OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG)));
    let left = b.add_operator(
        Map::new(|v| Value::record(vec![Value::Str("L".into()), v.clone()])),
        OperatorConfig::plain(),
    );
    let right = b.add_operator(
        Map::new(|v| Value::record(vec![Value::Str("R".into()), v.clone()])),
        OperatorConfig::plain(),
    );
    let union =
        b.add_operator(Union::new(), OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG)));
    b.connect(split, left).unwrap();
    b.connect(split, right).unwrap();
    b.connect(left, union).unwrap();
    b.connect(right, union).unwrap();
    let src = b.source_into(split).unwrap();
    let sink = b.sink_from(union).unwrap();
    let running = b.build().unwrap().start();

    let n = 30i64;
    for i in 1..=n {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(n as usize, Duration::from_secs(20)));
    let events = running.sink(sink).final_events();
    assert_eq!(events.len(), n as usize);
    let mut inputs: Vec<i64> =
        events.iter().filter_map(|e| e.payload.field(1).and_then(Value::as_i64)).collect();
    inputs.sort_unstable();
    assert_eq!(inputs, (1..=n).collect::<Vec<_>>(), "branch rejoin lost or duplicated events");
    let lefts =
        events.iter().filter(|e| e.payload.field(0).and_then(Value::as_str) == Some("L")).count();
    assert!(lefts > 0 && lefts < n as usize, "random split should use both branches ({lefts}/{n})");
    running.shutdown();
}

#[test]
fn fan_out_broadcast_reaches_all_consumers() {
    // One classifier broadcasting to three sinks: each sink sees all
    // events.
    let mut b = GraphBuilder::new();
    let c = b.add_operator(Classifier::new(4), OperatorConfig::plain());
    let src = b.source_into(c).unwrap();
    let sinks: Vec<SinkId> = (0..3).map(|_| b.sink_from(c).unwrap()).collect();
    let running = b.build().unwrap().start();
    for i in 0..12 {
        running.source(src).push(Value::Int(i));
    }
    for &s in &sinks {
        assert!(running.sink(s).wait_final(12, Duration::from_secs(10)));
        assert_eq!(running.sink(s).final_count(), 12);
    }
    running.shutdown();
}

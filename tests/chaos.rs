//! Deterministic chaos: randomized fault schedules (crashes, link severs,
//! delayed acks, disk faults, disk stalls) against a multi-hop pipeline of
//! non-deterministic operators must leave the outputs byte-identical to a
//! failure-free run — the paper's precise-recovery guarantee, now checked
//! under supervised (automatic) recovery instead of scripted `recover()`
//! calls.

use std::time::Duration;

use streammine::chaos::{FaultPlan, FaultScheduler, Topology};
use streammine::common::event::{Event, Value};
use streammine::common::ids::OperatorId;
use streammine::core::{
    GraphBuilder, LoggingConfig, OperatorConfig, Running, SinkId, SourceId, SupervisorConfig,
};
use streammine::operators::RandomTagger;

const FAST_LOG: Duration = Duration::from_micros(200);
const SEEDS: u64 = 16;
const STEPS: u64 = 36;

/// src → tagger → tagger → tagger → sink: three hops, all logged
/// non-speculative with checkpoints (so chaos exercises checkpoint restore,
/// log replay, and upstream replay at every depth).
fn pipeline() -> (Running, SourceId, SinkId) {
    let mut b = GraphBuilder::new();
    let cfg =
        || OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG)).with_checkpoint_every(7);
    let op0 = b.add_operator(RandomTagger, cfg());
    let op1 = b.add_operator(RandomTagger, cfg());
    let op2 = b.add_operator(RandomTagger, cfg());
    b.connect(op0, op1).unwrap();
    b.connect(op1, op2).unwrap();
    let src = b.source_into(op0).unwrap();
    let sink = b.sink_from(op2).unwrap();
    (b.build().unwrap().start(), src, sink)
}

fn payloads(events: &[Event]) -> Vec<Value> {
    events.iter().map(|e| e.payload.clone()).collect()
}

/// Runs the pipeline without faults and returns its outputs (ordered by
/// event id). Operator RNG seeds are a deterministic function of the graph,
/// so this is *the* failure-free answer for every chaos run below.
fn failure_free_reference() -> Vec<Value> {
    let (running, src, sink) = pipeline();
    for i in 0..STEPS {
        running.source(src).push(Value::Int(i as i64));
    }
    assert!(running.sink(sink).wait_final(STEPS as usize, Duration::from_secs(20)));
    let out = payloads(&running.sink(sink).final_events_by_id());
    running.shutdown();
    out
}

/// The headline property: for a grid of seeds, a random fault schedule
/// (with supervised auto-restart — no manual `recover()` anywhere) produces
/// outputs byte-identical to the failure-free run, and the fault timeline
/// itself is reproducible from `(seed, steps, topology)`.
#[test]
fn chaos_grid_preserves_precise_outputs() {
    let reference = failure_free_reference();
    for seed in 0..SEEDS {
        let (running, src, sink) = pipeline();
        let config = SupervisorConfig::aggressive();
        let supervisor = running.supervise(config.clone());
        let topo = Topology::probe(&running);
        let plan = FaultPlan::random(seed, STEPS, &topo);
        // Reproducible fault timeline: same (seed, steps, topology) — same
        // plan, always.
        assert_eq!(plan, FaultPlan::random(seed, STEPS, &topo));
        let crashes = plan.crash_count();
        let mut sched = FaultScheduler::new(plan);

        for step in 0..STEPS {
            sched.advance(step, &running);
            running.source(src).push(Value::Int(step as i64));
            // Pace the workload so faults interleave with processing
            // instead of all landing after the stream has drained.
            std::thread::sleep(Duration::from_millis(2));
        }
        sched.finish(&running);

        assert!(
            running.sink(sink).wait_final(STEPS as usize, Duration::from_secs(60)),
            "seed {seed}: stalled at {}/{} under plan {}",
            running.sink(sink).final_count(),
            STEPS,
            sched.plan()
        );
        let out = payloads(&running.sink(sink).final_events_by_id());
        assert_eq!(
            out,
            reference,
            "seed {seed}: outputs diverged from the failure-free run under plan {}",
            sched.plan()
        );

        // Every injected crash was recovered by the supervisor, and each
        // recorded backoff matches the capped exponential schedule.
        assert!(
            supervisor.restarts() >= crashes,
            "seed {seed}: {} supervised restarts for {crashes} crashes",
            supervisor.restarts()
        );
        for ev in supervisor.events() {
            assert_eq!(ev.backoff, config.backoff.delay(ev.attempt), "backoff off-schedule: {ev}");
        }
        // The metrics registry's account of recovery must agree with the
        // supervisor's event trail: same restart counts per operator, and
        // at least one upstream replay request per supervised restart.
        // (Stop monitoring first so both accounts are frozen.)
        supervisor.stop();
        streammine::chaos::verify_recovery_counters(
            &running.metrics(),
            &supervisor.events(),
            &running.obs().journal.events(),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", running.journal_dump()));
        running.shutdown();
    }
}

/// The network nemesis: a grid of seeded link-layer fault schedules —
/// slow-consumer sink stalls, congestion delay spikes, asymmetric data
/// partitions, and ack starvation — against the same pipeline. None of it
/// may change a single output byte: flow control and retransmission must
/// only ever *delay* delivery. The journal's backpressure episodes must
/// also reconcile with the metrics registry.
#[test]
fn network_nemesis_grid_preserves_precise_outputs() {
    let reference = failure_free_reference();
    for seed in 0..SEEDS {
        let (running, src, sink) = pipeline();
        let topo = Topology::probe(&running);
        assert_eq!(topo.sinks, 1, "probe must see the sink");
        let plan = FaultPlan::random_network(seed, STEPS, &topo);
        assert_eq!(plan, FaultPlan::random_network(seed, STEPS, &topo));
        let mut sched = FaultScheduler::new(plan);

        for step in 0..STEPS {
            sched.advance(step, &running);
            running.source(src).push(Value::Int(step as i64));
            std::thread::sleep(Duration::from_millis(2));
        }
        sched.finish(&running);

        assert!(
            running.sink(sink).wait_final(STEPS as usize, Duration::from_secs(60)),
            "seed {seed}: stalled at {}/{} under plan {}\n{}",
            running.sink(sink).final_count(),
            STEPS,
            sched.plan(),
            running.journal_dump()
        );
        let out = payloads(&running.sink(sink).final_events_by_id());
        assert_eq!(
            out,
            reference,
            "seed {seed}: outputs diverged under network plan {}",
            sched.plan()
        );
        streammine::chaos::verify_recovery_counters(
            &running.metrics(),
            &[],
            &running.obs().journal.events(),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", running.journal_dump()));
        running.shutdown();
    }
}

/// The supervisor notices a crash on its own (heartbeat + published crash
/// state) and restarts the node — the test never calls `recover()`.
#[test]
fn supervisor_restarts_crashed_node_without_manual_recover() {
    let (running, src, sink) = pipeline();
    let config = SupervisorConfig::aggressive();
    let supervisor = running.supervise(config.clone());
    let op1 = OperatorId::new(1);

    for i in 0..10 {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(10, Duration::from_secs(20)));
    let before = payloads(&running.sink(sink).final_events_by_id());

    running.crash(op1);
    // First supervised restart.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while supervisor.restarts() < 1 {
        assert!(std::time::Instant::now() < deadline, "supervisor never restarted op1");
        std::thread::sleep(Duration::from_millis(1));
    }
    // Crash again inside the stability window: the attempt counter grows
    // and the backoff doubles.
    running.crash(op1);
    while supervisor.restarts() < 2 {
        assert!(std::time::Instant::now() < deadline, "no second supervised restart");
        std::thread::sleep(Duration::from_millis(1));
    }

    for i in 10..20 {
        running.source(src).push(Value::Int(i));
    }
    assert!(
        running.sink(sink).wait_final(20, Duration::from_secs(30)),
        "stalled at {}/20 after supervised recovery",
        running.sink(sink).final_count()
    );
    let after = payloads(&running.sink(sink).final_events_by_id());
    assert_eq!(&after[..before.len()], &before[..], "pre-crash outputs changed");

    let events = supervisor.events();
    assert!(events.len() >= 2);
    assert_eq!(events[0].op, op1);
    assert_eq!(events[0].attempt, 1);
    assert_eq!(events[0].backoff, config.backoff.delay(1));
    assert_eq!(events[1].attempt, 2, "rapid re-crash should escalate the attempt counter");
    assert!(events[1].backoff > events[0].backoff, "backoff should grow across rapid crashes");
    running.shutdown();
}

/// A torn decision-log tail (partial write at crash time) must not panic
/// recovery: the corrupt record is dropped, its determinants are re-created
/// by re-execution, and outputs stay precise.
#[test]
fn torn_log_tail_recovers_without_panic() {
    // No checkpoints: a quiescent checkpoint would truncate the log and
    // leave no tail record to corrupt.
    let mut b = GraphBuilder::new();
    let cfg = || OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG));
    let op0 = b.add_operator(RandomTagger, cfg());
    let op1 = b.add_operator(RandomTagger, cfg());
    let op2 = b.add_operator(RandomTagger, cfg());
    b.connect(op0, op1).unwrap();
    b.connect(op1, op2).unwrap();
    let src = b.source_into(op0).unwrap();
    let sink = b.sink_from(op2).unwrap();
    let running = b.build().unwrap().start();
    let op2 = OperatorId::new(2);
    for i in 0..12 {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(12, Duration::from_secs(20)));
    let before = payloads(&running.sink(sink).final_events_by_id());

    running.crash(op2);
    let log = running.operator_log(op2).expect("op2 is logged");
    assert!(log.corrupt_tail(), "log has a tail record to corrupt");
    running.recover(op2);

    for i in 12..18 {
        running.source(src).push(Value::Int(i));
    }
    assert!(
        running.sink(sink).wait_final(18, Duration::from_secs(30)),
        "stalled at {}/18 after torn-tail recovery",
        running.sink(sink).final_count()
    );
    assert!(log.corrupt_dropped() > 0, "the corrupted record should have been detected");
    let after = payloads(&running.sink(sink).final_events_by_id());
    assert_eq!(&after[..before.len()], &before[..], "torn tail broke precise recovery");
    running.shutdown();
}

/// An upstream crash must not park duplicate copies of re-executed outputs
/// on the link: a checkpointless upstream replays its whole input stream on
/// recovery, and before resend suppression those re-sent outputs landed at
/// fresh link sequences — invisible while the downstream was alive, but
/// re-processed as *new* events (duplicated outputs) once a later
/// downstream crash replayed them from its pre-duplicate checkpoint.
#[test]
fn upstream_replay_does_not_duplicate_outputs_after_downstream_crash() {
    let build = || {
        let mut b = GraphBuilder::new();
        // op0 never checkpoints: its recovery replays from the beginning,
        // maximizing the re-sent window. op1 checkpoints, so its own
        // recovery replays from a position *before* any duplicates.
        let op0 = b
            .add_operator(RandomTagger, OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG)));
        let op1 = b.add_operator(
            RandomTagger,
            OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG)).with_checkpoint_every(7),
        );
        b.connect(op0, op1).unwrap();
        let src = b.source_into(op0).unwrap();
        let sink = b.sink_from(op1).unwrap();
        (b.build().unwrap().start(), src, sink)
    };

    let (reference, src, sink) = build();
    for i in 0..24 {
        reference.source(src).push(Value::Int(i));
    }
    assert!(reference.sink(sink).wait_final(24, Duration::from_secs(20)));
    let expected = payloads(&reference.sink(sink).final_events_by_id());
    reference.shutdown();

    let (running, src, sink) = build();
    let (op0, op1) = (OperatorId::new(0), OperatorId::new(1));
    for i in 0..8 {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(8, Duration::from_secs(20)));
    // op0 replays all 8 inputs and re-emits their outputs.
    running.crash(op0);
    running.recover(op0);
    for i in 8..12 {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(12, Duration::from_secs(20)));
    // op1's latest checkpoint covers 7 events — any duplicate copies op0
    // parked on the link sit inside the replayed range.
    running.crash(op1);
    running.recover(op1);
    for i in 12..24 {
        running.source(src).push(Value::Int(i));
    }
    assert!(
        running.sink(sink).wait_final(24, Duration::from_secs(30)),
        "stalled at {}/24",
        running.sink(sink).final_count()
    );
    // Let any late duplicates land before counting.
    std::thread::sleep(Duration::from_millis(50));
    let out = payloads(&running.sink(sink).final_events_by_id());
    assert_eq!(out.len(), expected.len(), "duplicated outputs after downstream crash");
    assert_eq!(out, expected);
    running.shutdown();
}

/// Tracing at sample-rate 1 must not perturb precise recovery — and must
/// itself *be* precise. Comparing `(id, payload, trace)` between a traced
/// failure-free run and traced faulted runs proves trace ids, span parents,
/// and sampling decisions are all reproduced bit-exactly by recovery.
/// (Timestamps are wall-clock and excluded, as in the untraced grid.)
#[test]
fn traced_chaos_grid_reproduces_trace_contexts_exactly() {
    use streammine::obs::{validate_chrome_trace, Obs};
    let traced_pipeline = || {
        let mut b = GraphBuilder::new().with_obs(Obs::traced(1));
        let cfg =
            || OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG)).with_checkpoint_every(7);
        let op0 = b.add_operator(RandomTagger, cfg());
        let op1 = b.add_operator(RandomTagger, cfg());
        let op2 = b.add_operator(RandomTagger, cfg());
        b.connect(op0, op1).unwrap();
        b.connect(op1, op2).unwrap();
        let src = b.source_into(op0).unwrap();
        let sink = b.sink_from(op2).unwrap();
        (b.build().unwrap().start(), src, sink)
    };

    let traced_outputs = |events: Vec<Event>| {
        assert!(events.iter().all(|e| e.trace.is_some()), "rate-1 sampling must stamp every event");
        events.into_iter().map(|e| (e.id, e.payload, e.trace)).collect::<Vec<_>>()
    };
    let reference = {
        let (running, src, sink) = traced_pipeline();
        for i in 0..STEPS {
            running.source(src).push(Value::Int(i as i64));
        }
        assert!(running.sink(sink).wait_final(STEPS as usize, Duration::from_secs(20)));
        let out = traced_outputs(running.sink(sink).final_events_by_id());
        running.shutdown();
        out
    };

    for seed in 0..4 {
        let (running, src, sink) = traced_pipeline();
        let supervisor = running.supervise(SupervisorConfig::aggressive());
        let topo = Topology::probe(&running);
        let mut sched = FaultScheduler::new(FaultPlan::random(seed, STEPS, &topo));
        for step in 0..STEPS {
            sched.advance(step, &running);
            running.source(src).push(Value::Int(step as i64));
            std::thread::sleep(Duration::from_millis(2));
        }
        sched.finish(&running);
        assert!(
            running.sink(sink).wait_final(STEPS as usize, Duration::from_secs(60)),
            "seed {seed}: stalled at {}/{STEPS} under plan {}",
            running.sink(sink).final_count(),
            sched.plan()
        );
        let out = traced_outputs(running.sink(sink).final_events_by_id());
        assert_eq!(out.len(), reference.len(), "seed {seed}: traced output count diverged");
        for (i, (o, r)) in out.iter().zip(reference.iter()).enumerate() {
            assert_eq!(o, r, "seed {seed}: traced output {i} diverged (trace context included)");
        }
        supervisor.stop();
        // The tracer's books must stay internally consistent under faults,
        // and the chrome export must remain loadable.
        streammine::chaos::verify_rollback_traces(&running.obs().tracer)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(!running.obs().tracer.spans().is_empty(), "seed {seed}: no spans retained");
        validate_chrome_trace(&running.chrome_trace())
            .unwrap_or_else(|e| panic!("seed {seed}: chrome trace invalid: {e}"));
        running.shutdown();
    }
}

/// Rollback attribution under chaos: a traced speculative pipeline takes a
/// scripted disk stall while a speculative input is revised mid-flight.
/// Every rolled-back output must carry a trace naming the originating
/// determinant and the full set of spans the cascade invalidated.
#[test]
fn traced_rollback_under_chaos_names_determinant_and_blast_radius() {
    use streammine::chaos::{FaultEvent, FaultKind};
    use streammine::obs::Obs;
    let mut b = GraphBuilder::new().with_obs(Obs::traced(1));
    let cfg = || OperatorConfig::speculative(LoggingConfig::simulated(FAST_LOG));
    let op0 = b.add_operator(RandomTagger, cfg());
    let op1 = b.add_operator(RandomTagger, cfg());
    b.connect(op0, op1).unwrap();
    let src = b.source_into(op0).unwrap();
    let sink = b.sink_from(op1).unwrap();
    let running = b.build().unwrap().start();

    let mut sched = FaultScheduler::new(FaultPlan::scripted(vec![FaultEvent {
        step: 1,
        kind: FaultKind::DiskStall { op: 1, millis: 5 },
    }]));
    sched.advance(0, &running);
    let id = running.source(src).push_speculative(Value::Int(1));
    // Wait until the speculative version has propagated to the sink so the
    // revision genuinely rolls back in-flight work at both hops.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while running.sink(sink).seen_count() == 0 {
        assert!(std::time::Instant::now() < deadline, "speculative emission never arrived");
        std::thread::yield_now();
    }
    sched.advance(1, &running);
    running.source(src).revise(id, 1, Value::Int(2));
    running.source(src).finalize(id, 1);
    sched.finish(&running);
    assert!(running.sink(sink).wait_final(1, Duration::from_secs(20)));

    let tracer = &running.obs().tracer;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while tracer.rollbacks().is_empty() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let rollbacks = tracer.rollbacks();
    assert!(!rollbacks.is_empty(), "the revision must roll back at least one span");
    streammine::chaos::verify_rollback_traces(tracer)
        .unwrap_or_else(|e| panic!("{e}\n{}", running.journal_dump()));
    for rb in &rollbacks {
        assert_ne!(rb.determinant, 0, "rollback must name its originating determinant");
        assert!(!rb.invalidated.is_empty(), "rollback must list its invalidated spans");
    }
    // The cascade is queryable as blast radius per determinant.
    let blast = tracer.blast_radius();
    assert!(
        blast.values().any(|spans| !spans.is_empty()),
        "blast radius must attribute invalidated spans to a determinant"
    );
    running.shutdown();
}

/// Scripted plans drive the same injection surface: a sever/heal window on
/// the middle edge plus a disk stall must only delay, never corrupt.
#[test]
fn scripted_sever_and_stall_only_delay_outputs() {
    use streammine::chaos::{FaultEvent, FaultKind};
    let reference = failure_free_reference();
    let (running, src, sink) = pipeline();
    let plan = FaultPlan::scripted(vec![
        FaultEvent { step: 4, kind: FaultKind::SeverData { edge: 1 } },
        FaultEvent { step: 6, kind: FaultKind::DiskStall { op: 0, millis: 5 } },
        FaultEvent { step: 10, kind: FaultKind::HealData { edge: 1 } },
        FaultEvent { step: 12, kind: FaultKind::DelayAcks { edge: 0 } },
        FaultEvent { step: 20, kind: FaultKind::RestoreAcks { edge: 0 } },
    ]);
    assert!(plan.windows_closed());
    let mut sched = FaultScheduler::new(plan);
    for step in 0..STEPS {
        sched.advance(step, &running);
        running.source(src).push(Value::Int(step as i64));
        std::thread::sleep(Duration::from_millis(1));
    }
    sched.finish(&running);
    assert!(sched.exhausted());
    assert!(
        running.sink(sink).wait_final(STEPS as usize, Duration::from_secs(60)),
        "stalled at {}/{STEPS}",
        running.sink(sink).final_count()
    );
    let out = payloads(&running.sink(sink).final_events_by_id());
    assert_eq!(out, reference);
    running.shutdown();
}

//! Multi-process distributed chaos: a chain of worker OS processes joined
//! by the TCP transport must produce sink outputs byte-identical to the
//! same chain run in-process with no faults — under real SIGKILLs, dropped
//! listeners, one-way socket partitions, and heartbeat suppression.
//!
//! This is the paper's precise-recovery guarantee at its strongest: the
//! non-deterministic decisions of every hop are visible in the output
//! bytes, the processes hold no checkpoints, and recovery crosses real
//! process and socket boundaries.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use streammine::chaos::{
    verify_bounded_divergence, verify_cluster_recovery, ProcFaultEvent, ProcFaultKind,
    ProcFaultPlan,
};
use streammine::common::event::{Event, Value};
use streammine::core::dist::{Cluster, ClusterSpec, NodeSpec};
use streammine::core::{GraphBuilder, LoggingConfig, OperatorConfig};
use streammine::obs::{
    validate_chrome_trace, validate_prometheus, FaultKind, RecoveryModeTag, RecoveryTimeline,
    RegistrySnapshot,
};
use streammine::operators::RandomTagger;
use streammine::sketch::ErrorBound;

/// Simulated stable-log write latency (µs) — fast, so runs stay short.
const FAST_LOG_US: u64 = 200;

fn inputs(n: u64) -> Vec<Value> {
    (0..n).map(|i| Value::Int(i as i64)).collect()
}

fn payloads(events: &[Event]) -> Vec<Value> {
    events.iter().map(|e| e.payload.clone()).collect()
}

/// The failure-free in-process reference: the same tagger chain, logged
/// with the same latency, no checkpoints, no faults. `GraphBuilder` seeds
/// worker `i`'s RNG with `0xABCD_0000 + i`, the same convention
/// `ClusterSpec` uses, so its bytes are the distributed ground truth.
fn reference(hops: usize, input: &[Value]) -> Vec<Value> {
    let mut b = GraphBuilder::new();
    let cfg =
        || OperatorConfig::logged(LoggingConfig::simulated(Duration::from_micros(FAST_LOG_US)));
    let ids: Vec<_> = (0..hops).map(|_| b.add_operator(RandomTagger, cfg())).collect();
    for pair in ids.windows(2) {
        b.connect(pair[0], pair[1]).unwrap();
    }
    let src = b.source_into(ids[0]).unwrap();
    let sink = b.sink_from(*ids.last().unwrap()).unwrap();
    let running = b.build().unwrap().start();
    for v in input {
        running.source(src).push(v.clone());
    }
    assert!(
        running.sink(sink).wait_final(input.len(), Duration::from_secs(60)),
        "reference run did not finish"
    );
    let out = payloads(&running.sink(sink).final_events());
    running.shutdown();
    out
}

fn tagger_chain(hops: usize) -> ClusterSpec {
    ClusterSpec::new(
        vec![NodeSpec::logged("random-tagger", FAST_LOG_US, 1); hops],
        PathBuf::from(env!("CARGO_BIN_EXE_streammine_worker")),
    )
}

fn apply(cluster: &Cluster, kind: ProcFaultKind) {
    match kind {
        ProcFaultKind::KillWorker { worker } => cluster.kill_worker(worker as usize),
        ProcFaultKind::ListenerDrop { worker, millis } => {
            cluster.drop_listener(worker as usize, Duration::from_millis(millis));
        }
        ProcFaultKind::PartitionInbound { worker, millis, .. } => {
            cluster.partition_inbound(worker as usize, Duration::from_millis(millis));
        }
        ProcFaultKind::PauseBeats { worker, millis } => {
            cluster.pause_beats(worker as usize, Duration::from_millis(millis));
        }
    }
}

/// Everything a chaos run leaves behind: output bytes, recovery counters,
/// the assembled recovery timelines, and the cluster metrics aggregate
/// (snapshotted after shutdown, so final telemetry flushes are merged).
struct RunOutcome {
    out: Vec<Value>,
    restarts: u64,
    crashes: u64,
    expiries: u64,
    timelines: Vec<RecoveryTimeline>,
    snapshot: RegistrySnapshot,
}

/// Runs the distributed chain, injecting `plan` step by step while
/// feeding, and returns the run's [`RunOutcome`].
fn cluster_run(hops: usize, input: &[Value], plan: &ProcFaultPlan, pace: Duration) -> RunOutcome {
    let cluster = Cluster::launch(tagger_chain(hops)).expect("cluster launch");
    assert!(cluster.wait_connected(Duration::from_secs(30)), "cluster never wired up");
    let mut pending = plan.events.iter().peekable();
    for (step, v) in input.iter().enumerate() {
        while let Some(ev) = pending.peek() {
            if ev.step <= step as u64 {
                apply(&cluster, ev.kind);
                pending.next();
            } else {
                break;
            }
        }
        cluster.source().push(v.clone());
        std::thread::sleep(pace);
    }
    assert!(
        cluster.sink().wait_final(input.len(), Duration::from_secs(120)),
        "sink saw {}/{} final events (plan {plan}, sink cursor {:?})",
        cluster.sink().final_count(),
        input.len(),
        cluster.sink_cursor(),
    );
    let out = payloads(&cluster.sink().final_events());
    let stats = (cluster.restarts(), cluster.crashes_detected(), cluster.leases_expired());
    cluster.shutdown();
    RunOutcome {
        out,
        restarts: stats.0,
        crashes: stats.1,
        expiries: stats.2,
        timelines: cluster.recovery_timelines(),
        snapshot: cluster.cluster_snapshot(),
    }
}

/// Minimal HTTP GET against the cluster telemetry server.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect telemetry http");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: cluster\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read http response");
    let (head, body) = response.split_once("\r\n\r\n").expect("malformed http response");
    assert!(head.starts_with("HTTP/1.1 200"), "GET {path}: {head}");
    body.to_string()
}

#[test]
fn two_process_chain_matches_in_process_reference() {
    let input = inputs(12);
    let expected = reference(2, &input);
    let r = cluster_run(2, &input, &ProcFaultPlan::scripted(vec![]), Duration::from_millis(2));
    assert_eq!(r.out, expected, "fault-free distributed run diverged from in-process reference");
    assert_eq!(r.restarts, 0, "fault-free run should not restart anyone");
    assert!(r.timelines.is_empty(), "fault-free run fabricated a recovery timeline");
}

#[test]
fn sigkill_mid_stream_recovers_byte_identical() {
    let input = inputs(20);
    let expected = reference(3, &input);
    let plan = ProcFaultPlan::scripted(vec![ProcFaultEvent {
        step: 6,
        kind: ProcFaultKind::KillWorker { worker: 1 },
    }]);
    let r = cluster_run(3, &input, &plan, Duration::from_millis(10));
    assert!(r.crashes >= 1, "the SIGKILL was never detected as a crash");
    assert!(r.restarts >= 1, "the killed worker was never restarted");
    assert_eq!(r.out, expected, "recovery after SIGKILL changed the output bytes");
    // The fault is reconstructed as a structured timeline with every
    // phase stamped: the chain drained, so the replacement handshaked and
    // produced output.
    let t = r
        .timelines
        .iter()
        .find(|t| t.kind == FaultKind::Crash && t.worker == 1)
        .expect("no crash timeline for the killed worker");
    assert!(t.monotonic(), "non-monotonic timeline: {}", t.to_json());
    assert!(t.handshake_us.is_some(), "replacement handshake never stamped");
    assert!(t.first_output_us.is_some(), "post-recovery output never stamped");
    assert!(t.drain_us.is_some(), "drain never stamped");
}

#[test]
fn lease_expiry_fences_a_silent_worker_and_recovers() {
    // Long enough (60 steps × 10 ms) that the 250 ms lease expires while
    // the stream is still flowing.
    let input = inputs(60);
    let expected = reference(3, &input);
    // 900 ms of silence against a 250 ms lease: the worker is alive and
    // processing, but the control plane must declare it failed, fence its
    // incarnation, and restart — without duplicating or reordering output.
    let plan = ProcFaultPlan::scripted(vec![ProcFaultEvent {
        step: 5,
        kind: ProcFaultKind::PauseBeats { worker: 2, millis: 900 },
    }]);
    let r = cluster_run(3, &input, &plan, Duration::from_millis(10));
    assert!(r.expiries >= 1, "the silent worker's lease never expired");
    assert!(r.restarts >= 1, "the fenced worker was never restarted");
    assert_eq!(r.out, expected, "lease-expiry recovery changed the output bytes");
    assert!(
        r.timelines.iter().any(|t| t.kind == FaultKind::LeaseExpiry && t.worker == 2),
        "no lease-expiry timeline for the silent worker"
    );
}

#[test]
fn chaos_grid_16_seeds_byte_identical_under_real_faults() {
    const SEEDS: u64 = 16;
    const STEPS: u64 = 24;
    const HOPS: usize = 3;
    let input = inputs(STEPS);
    let expected = reference(HOPS, &input);
    let mut total_restarts = 0;
    let mut total_events = 0;
    for seed in 0..SEEDS {
        let plan = ProcFaultPlan::random(seed, STEPS, HOPS as u32);
        total_events += plan.events.len();
        let r = cluster_run(HOPS, &input, &plan, Duration::from_millis(20));
        assert_eq!(
            r.out, expected,
            "seed {seed}: distributed output diverged from reference under {plan}"
        );
        // Telemetry reconciliation: timelines vs the injected schedule vs
        // the cluster-level counters the workers reported.
        verify_cluster_recovery(
            &plan,
            &r.timelines,
            r.crashes,
            r.expiries,
            r.restarts,
            &r.snapshot,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e} (plan {plan})"));
        total_restarts += r.restarts;
    }
    assert!(total_events > 0, "the grid injected no faults at all");
    assert!(
        total_restarts > 0,
        "the grid never exercised process restart ({total_events} faults injected)"
    );
}

/// Approximate recovery across real process boundaries: an identity hop
/// feeds a count-min worker declared approximate (ε = 0.25), which
/// checkpoints every 3 events into a directory the replacement process
/// reads after a real SIGKILL. The replacement resumes from the *stale*
/// snapshot — replayed inputs whose outputs already reached the sink are
/// dropped against the error budget instead of re-executed — so sink
/// estimates may run below the fault-free run's, but never above and
/// never by more than the declared `ε·N`. The recovery timeline must
/// carry the approximate mode tag.
#[test]
fn sigkill_approximate_recovery_stays_within_declared_bound() {
    let bound = ErrorBound::new(0.25, 0.05);
    let n: u64 = 48;
    let input: Vec<Value> = (0..n).map(|i| Value::Int((i % 9) as i64)).collect();

    let base = std::env::temp_dir().join(format!("streammine-approx-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let spec_for = |tag: &str| {
        ClusterSpec::new(
            vec![
                NodeSpec::logged("identity", FAST_LOG_US, 1),
                NodeSpec::logged("count-min", FAST_LOG_US, 1).with_approximate_recovery(
                    bound,
                    3,
                    base.join(tag),
                ),
            ],
            PathBuf::from(env!("CARGO_BIN_EXE_streammine_worker")),
        )
    };

    let run = |spec: ClusterSpec, plan: &ProcFaultPlan| {
        let cluster = Cluster::launch(spec).expect("cluster launch");
        assert!(cluster.wait_connected(Duration::from_secs(30)), "cluster never wired up");
        let mut pending = plan.events.iter().peekable();
        for (step, v) in input.iter().enumerate() {
            while let Some(ev) = pending.peek() {
                if ev.step <= step as u64 {
                    apply(&cluster, ev.kind);
                    pending.next();
                } else {
                    break;
                }
            }
            cluster.source().push(v.clone());
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            cluster.sink().wait_final(input.len(), Duration::from_secs(120)),
            "sink saw {}/{} final events",
            cluster.sink().final_count(),
            input.len(),
        );
        let estimates: Vec<u64> = cluster
            .sink()
            .final_events_by_id()
            .iter()
            .map(|e| e.payload.field(1).and_then(Value::as_i64).expect("Record[key, est]") as u64)
            .collect();
        let restarts = cluster.restarts();
        cluster.shutdown();
        (estimates, cluster.recovery_timelines(), restarts)
    };

    let (baseline, clean_timelines, _) =
        run(spec_for("baseline"), &ProcFaultPlan::scripted(vec![]));
    assert!(clean_timelines.is_empty(), "fault-free run fabricated a recovery timeline");

    let plan = ProcFaultPlan::scripted(vec![ProcFaultEvent {
        step: 30,
        kind: ProcFaultKind::KillWorker { worker: 1 },
    }]);
    let (recovered, timelines, restarts) = run(spec_for("faulty"), &plan);
    assert!(restarts >= 1, "the killed worker was never restarted");

    let report = verify_bounded_divergence(bound, n, &baseline, &recovered)
        .unwrap_or_else(|e| panic!("SIGKILL divergence check: {e}"));
    eprintln!(
        "sigkill approx: deviation {}/{} allowed, budget remaining {}",
        report.max_deviation, report.allowed, report.remaining
    );
    let t = timelines
        .iter()
        .find(|t| t.kind == FaultKind::Crash && t.worker == 1)
        .expect("no crash timeline for the killed worker");
    assert_eq!(t.mode, RecoveryModeTag::Approximate, "timeline missed the recovery mode");
    assert!(t.monotonic(), "non-monotonic timeline: {}", t.to_json());
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn cluster_telemetry_aggregates_metrics_traces_and_timelines() {
    let input = inputs(24);
    let expected = reference(2, &input);
    let mut spec = tagger_chain(2);
    spec.trace_one_in = 1; // trace every source event
    spec.telemetry_millis = 20;
    let cluster = Cluster::launch(spec).expect("cluster launch");
    assert!(cluster.wait_connected(Duration::from_secs(30)), "cluster never wired up");
    let server = cluster.serve_http("127.0.0.1:0").expect("telemetry http bind");

    for (step, v) in input.iter().enumerate() {
        if step == 8 {
            cluster.kill_worker(1);
        }
        cluster.source().push(v.clone());
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        cluster.sink().wait_final(input.len(), Duration::from_secs(120)),
        "sink saw {}/{} final events",
        cluster.sink().final_count(),
        input.len(),
    );
    assert_eq!(payloads(&cluster.sink().final_events()), expected, "output bytes diverged");

    // Scrape the live endpoints over real HTTP mid-run (pre-shutdown).
    let live = http_get(server.local_addr(), "/cluster/metrics");
    validate_prometheus(&live).expect("live /cluster/metrics fails the linter");
    let recovery_body = http_get(server.local_addr(), "/cluster/recovery");
    assert!(recovery_body.starts_with("{\"recoveries\":"), "unexpected recovery JSON");

    cluster.shutdown();
    server.stop();

    // Worker edge metrics reached the aggregate with worker labels — the
    // detached-transport-metrics regression this plane exists to catch.
    let snap = cluster.cluster_snapshot();
    let worker_transport: u64 = snap
        .samples
        .iter()
        .filter(|s| s.name == "transport.frames_out" && s.labels.worker.is_some())
        .filter_map(|s| snap.counter("transport.frames_out", s.labels))
        .sum();
    assert!(worker_transport > 0, "no worker-labeled transport.frames_out in the aggregate");
    validate_prometheus(&cluster.cluster_prometheus()).expect("cluster prometheus lint");

    // Stitched Chrome trace: spans from both workers (distinct pids) for
    // shared trace ids, and the export passes the format validator.
    let trace = cluster.cluster_chrome_trace();
    let events = validate_chrome_trace(&trace).expect("stitched chrome trace invalid");
    assert!(events > 0, "stitched trace is empty");
    let stitched = cluster.telemetry().cross_process_traces();
    assert!(!stitched.is_empty(), "no trace id spans more than one worker");
    assert!(
        stitched.iter().any(|&t| cluster.telemetry().trace_pid_count(t) >= 2),
        "stitched traces never cover two worker pids"
    );

    // The kill shows up as one crash timeline with monotonic phases, and
    // telemetry-synthesized restarts match the launcher's counter.
    let timelines = cluster.recovery_timelines();
    assert_eq!(cluster.restarts(), 1, "expected exactly one restart");
    assert_eq!(timelines.len(), 1, "expected exactly one recovery timeline");
    assert_eq!(timelines[0].kind, FaultKind::Crash);
    assert_eq!(timelines[0].worker, 1);
    assert!(timelines[0].monotonic(), "non-monotonic: {}", timelines[0].to_json());
    assert_eq!(
        snap.counter("recovery.restarts", streammine::obs::Labels::NONE.with_worker(1)),
        Some(1),
        "telemetry undercounted worker 1's restart"
    );
}

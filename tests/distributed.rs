//! Multi-process distributed chaos: a chain of worker OS processes joined
//! by the TCP transport must produce sink outputs byte-identical to the
//! same chain run in-process with no faults — under real SIGKILLs, dropped
//! listeners, one-way socket partitions, and heartbeat suppression.
//!
//! This is the paper's precise-recovery guarantee at its strongest: the
//! non-deterministic decisions of every hop are visible in the output
//! bytes, the processes hold no checkpoints, and recovery crosses real
//! process and socket boundaries.

use std::path::PathBuf;
use std::time::Duration;

use streammine::chaos::{ProcFaultEvent, ProcFaultKind, ProcFaultPlan};
use streammine::common::event::{Event, Value};
use streammine::core::dist::{Cluster, ClusterSpec, NodeSpec};
use streammine::core::{GraphBuilder, LoggingConfig, OperatorConfig};
use streammine::operators::RandomTagger;

/// Simulated stable-log write latency (µs) — fast, so runs stay short.
const FAST_LOG_US: u64 = 200;

fn inputs(n: u64) -> Vec<Value> {
    (0..n).map(|i| Value::Int(i as i64)).collect()
}

fn payloads(events: &[Event]) -> Vec<Value> {
    events.iter().map(|e| e.payload.clone()).collect()
}

/// The failure-free in-process reference: the same tagger chain, logged
/// with the same latency, no checkpoints, no faults. `GraphBuilder` seeds
/// worker `i`'s RNG with `0xABCD_0000 + i`, the same convention
/// `ClusterSpec` uses, so its bytes are the distributed ground truth.
fn reference(hops: usize, input: &[Value]) -> Vec<Value> {
    let mut b = GraphBuilder::new();
    let cfg =
        || OperatorConfig::logged(LoggingConfig::simulated(Duration::from_micros(FAST_LOG_US)));
    let ids: Vec<_> = (0..hops).map(|_| b.add_operator(RandomTagger, cfg())).collect();
    for pair in ids.windows(2) {
        b.connect(pair[0], pair[1]).unwrap();
    }
    let src = b.source_into(ids[0]).unwrap();
    let sink = b.sink_from(*ids.last().unwrap()).unwrap();
    let running = b.build().unwrap().start();
    for v in input {
        running.source(src).push(v.clone());
    }
    assert!(
        running.sink(sink).wait_final(input.len(), Duration::from_secs(60)),
        "reference run did not finish"
    );
    let out = payloads(&running.sink(sink).final_events());
    running.shutdown();
    out
}

fn tagger_chain(hops: usize) -> ClusterSpec {
    ClusterSpec::new(
        vec![
            NodeSpec { operator: "random-tagger".into(), log_micros: FAST_LOG_US, disks: 1 };
            hops
        ],
        PathBuf::from(env!("CARGO_BIN_EXE_streammine_worker")),
    )
}

fn apply(cluster: &Cluster, kind: ProcFaultKind) {
    match kind {
        ProcFaultKind::KillWorker { worker } => cluster.kill_worker(worker as usize),
        ProcFaultKind::ListenerDrop { worker, millis } => {
            cluster.drop_listener(worker as usize, Duration::from_millis(millis));
        }
        ProcFaultKind::PartitionInbound { worker, millis, .. } => {
            cluster.partition_inbound(worker as usize, Duration::from_millis(millis));
        }
        ProcFaultKind::PauseBeats { worker, millis } => {
            cluster.pause_beats(worker as usize, Duration::from_millis(millis));
        }
    }
}

/// Runs the distributed chain, injecting `plan` step by step while
/// feeding, and returns the sink payloads plus recovery counters.
fn cluster_run(
    hops: usize,
    input: &[Value],
    plan: &ProcFaultPlan,
    pace: Duration,
) -> (Vec<Value>, u64, u64, u64) {
    let cluster = Cluster::launch(tagger_chain(hops)).expect("cluster launch");
    assert!(cluster.wait_connected(Duration::from_secs(30)), "cluster never wired up");
    let mut pending = plan.events.iter().peekable();
    for (step, v) in input.iter().enumerate() {
        while let Some(ev) = pending.peek() {
            if ev.step <= step as u64 {
                apply(&cluster, ev.kind);
                pending.next();
            } else {
                break;
            }
        }
        cluster.source().push(v.clone());
        std::thread::sleep(pace);
    }
    assert!(
        cluster.sink().wait_final(input.len(), Duration::from_secs(120)),
        "sink saw {}/{} final events (plan {plan}, sink cursor {:?})",
        cluster.sink().final_count(),
        input.len(),
        cluster.sink_cursor(),
    );
    let out = payloads(&cluster.sink().final_events());
    let stats = (cluster.restarts(), cluster.crashes_detected(), cluster.leases_expired());
    cluster.shutdown();
    (out, stats.0, stats.1, stats.2)
}

#[test]
fn two_process_chain_matches_in_process_reference() {
    let input = inputs(12);
    let expected = reference(2, &input);
    let (got, restarts, _, _) =
        cluster_run(2, &input, &ProcFaultPlan::scripted(vec![]), Duration::from_millis(2));
    assert_eq!(got, expected, "fault-free distributed run diverged from in-process reference");
    assert_eq!(restarts, 0, "fault-free run should not restart anyone");
}

#[test]
fn sigkill_mid_stream_recovers_byte_identical() {
    let input = inputs(20);
    let expected = reference(3, &input);
    let plan = ProcFaultPlan::scripted(vec![ProcFaultEvent {
        step: 6,
        kind: ProcFaultKind::KillWorker { worker: 1 },
    }]);
    let (got, restarts, crashes, _) = cluster_run(3, &input, &plan, Duration::from_millis(10));
    assert!(crashes >= 1, "the SIGKILL was never detected as a crash");
    assert!(restarts >= 1, "the killed worker was never restarted");
    assert_eq!(got, expected, "recovery after SIGKILL changed the output bytes");
}

#[test]
fn lease_expiry_fences_a_silent_worker_and_recovers() {
    // Long enough (60 steps × 10 ms) that the 250 ms lease expires while
    // the stream is still flowing.
    let input = inputs(60);
    let expected = reference(3, &input);
    // 900 ms of silence against a 250 ms lease: the worker is alive and
    // processing, but the control plane must declare it failed, fence its
    // incarnation, and restart — without duplicating or reordering output.
    let plan = ProcFaultPlan::scripted(vec![ProcFaultEvent {
        step: 5,
        kind: ProcFaultKind::PauseBeats { worker: 2, millis: 900 },
    }]);
    let (got, restarts, _, expiries) = cluster_run(3, &input, &plan, Duration::from_millis(10));
    assert!(expiries >= 1, "the silent worker's lease never expired");
    assert!(restarts >= 1, "the fenced worker was never restarted");
    assert_eq!(got, expected, "lease-expiry recovery changed the output bytes");
}

#[test]
fn chaos_grid_16_seeds_byte_identical_under_real_faults() {
    const SEEDS: u64 = 16;
    const STEPS: u64 = 24;
    const HOPS: usize = 3;
    let input = inputs(STEPS);
    let expected = reference(HOPS, &input);
    let mut total_restarts = 0;
    let mut total_events = 0;
    for seed in 0..SEEDS {
        let plan = ProcFaultPlan::random(seed, STEPS, HOPS as u32);
        total_events += plan.events.len();
        let (got, restarts, _, _) = cluster_run(HOPS, &input, &plan, Duration::from_millis(20));
        assert_eq!(
            got, expected,
            "seed {seed}: distributed output diverged from reference under {plan}"
        );
        total_restarts += restarts;
    }
    assert!(total_events > 0, "the grid injected no faults at all");
    assert!(
        total_restarts > 0,
        "the grid never exercised process restart ({total_events} faults injected)"
    );
}

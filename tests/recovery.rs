//! Precise-recovery integration tests: outputs with a crash + recovery must
//! equal the outputs of a failure-free run (the paper's definition of
//! precise recovery, §1 footnote 1).

use std::time::Duration;

use streammine::common::event::{Event, Value};
use streammine::core::{
    GraphBuilder, LoggingConfig, OpCtx, Operator, OperatorConfig, Running, SinkId, SourceId,
};
use streammine::operators::{Classifier, Split, StampedRelay, SystemTimeWindow, WindowAgg};
use streammine::stm::StmAbort;

const FAST_LOG: Duration = Duration::from_micros(200);

/// An operator whose output embeds a random draw — the strictest test of
/// determinant replay: outputs only match if the logged randomness is
/// reproduced bit-exactly.
struct RandomTagger;

impl Operator for RandomTagger {
    fn name(&self) -> &str {
        "random-tagger"
    }
    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        let tag = ctx.random_u64();
        ctx.emit(Value::record(vec![event.payload.clone(), Value::Int(tag as i64)]));
        Ok(())
    }
}

fn payloads(events: &[Event]) -> Vec<Value> {
    events.iter().map(|e| e.payload.clone()).collect()
}

/// Builds src → RandomTagger(logged, non-spec) → sink.
fn tagger_graph(checkpoint: Option<u64>) -> (Running, SourceId, SinkId) {
    let mut b = GraphBuilder::new();
    let mut cfg = OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG));
    if let Some(every) = checkpoint {
        cfg = cfg.with_checkpoint_every(every);
    }
    let op = b.add_operator(RandomTagger, cfg);
    let src = b.source_into(op).unwrap();
    let sink = b.sink_from(op).unwrap();
    (b.build().unwrap().start(), src, sink)
}

#[test]
fn failure_free_run_tags_every_event() {
    let (running, src, sink) = tagger_graph(None);
    for i in 0..10 {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(10, Duration::from_secs(10)));
    let events = running.sink(sink).final_events_by_id();
    assert_eq!(events.len(), 10);
    for e in &events {
        assert!(e.payload.field(1).is_some(), "missing random tag");
    }
    running.shutdown();
}

#[test]
fn crash_and_recover_reproduces_identical_outputs() {
    // Reference run: no failure.
    let (reference, src, sink) = tagger_graph(None);
    // The tag is drawn from the operator's seeded RNG, so two *identical
    // histories* produce identical tags; we compare the recovered run
    // against its own pre-crash outputs instead of across runs.
    for i in 0..20 {
        reference.source(src).push(Value::Int(i));
    }
    assert!(reference.sink(sink).wait_final(20, Duration::from_secs(10)));
    reference.shutdown();

    // Crash run: push 20, wait for 10 final, crash, recover, push 20 more.
    let (running, src, sink) = tagger_graph(None);
    let op = streammine::common::ids::OperatorId::new(0);
    for i in 0..20 {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(10, Duration::from_secs(10)));
    let before_crash = running.sink(sink).final_events_by_id();
    running.crash(op);
    running.recover(op);
    for i in 20..40 {
        running.source(src).push(Value::Int(i));
    }
    assert!(
        running.sink(sink).wait_final(40, Duration::from_secs(20)),
        "only {} of 40 events final after recovery",
        running.sink(sink).final_count()
    );
    let after = running.sink(sink).final_events_by_id();
    assert_eq!(after.len(), 40);

    // Precise recovery: everything observed before the crash is unchanged.
    for pre in &before_crash {
        let post = after.iter().find(|e| e.id == pre.id).expect("pre-crash event vanished");
        assert_eq!(post.payload, pre.payload, "event {} changed content across recovery", pre.id);
    }
    // Inputs are intact: every input value appears exactly once.
    let mut inputs: Vec<i64> =
        after.iter().filter_map(|e| e.payload.field(0).and_then(Value::as_i64)).collect();
    inputs.sort_unstable();
    assert_eq!(inputs, (0..40).collect::<Vec<_>>());
    running.shutdown();
}

#[test]
fn recovery_with_checkpoint_truncates_replay() {
    let (running, src, sink) = tagger_graph(Some(5));
    let op = streammine::common::ids::OperatorId::new(0);
    for i in 0..17 {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(17, Duration::from_secs(10)));
    let before = running.sink(sink).final_events_by_id();
    running.crash(op);
    running.recover(op);
    for i in 17..25 {
        running.source(src).push(Value::Int(i));
    }
    assert!(
        running.sink(sink).wait_final(25, Duration::from_secs(20)),
        "only {} of 25 final after checkpointed recovery",
        running.sink(sink).final_count()
    );
    let after = running.sink(sink).final_events_by_id();
    for pre in &before {
        let post = after.iter().find(|e| e.id == pre.id).expect("pre-crash event vanished");
        assert_eq!(post.payload, pre.payload);
    }
    running.shutdown();
}

#[test]
fn split_routing_is_reproduced_after_crash() {
    // Split routes randomly; after recovery the same events must take the
    // same routes (logged decisions), so each sink sees no duplicates and
    // no migrations.
    let mut b = GraphBuilder::new();
    let s =
        b.add_operator(Split::new(2), OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG)));
    let src = b.source_into(s).unwrap();
    let sink_a = b.sink_from(s).unwrap();
    let sink_b = b.sink_from(s).unwrap();
    let running = b.build().unwrap().start();
    let op = streammine::common::ids::OperatorId::new(0);

    for i in 0..30 {
        running.source(src).push(Value::Int(i));
    }
    let wait_total = |n: usize, t: Duration| -> bool {
        let deadline = std::time::Instant::now() + t;
        while running.sink(sink_a).final_count() + running.sink(sink_b).final_count() < n {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    };
    assert!(wait_total(30, Duration::from_secs(10)));
    let a_before = payloads(&running.sink(sink_a).final_events_by_id());
    let b_before = payloads(&running.sink(sink_b).final_events_by_id());

    running.crash(op);
    running.recover(op);
    for i in 30..50 {
        running.source(src).push(Value::Int(i));
    }
    assert!(wait_total(50, Duration::from_secs(20)), "routing lost events after recovery");

    let a_after = payloads(&running.sink(sink_a).final_events_by_id());
    let b_after = payloads(&running.sink(sink_b).final_events_by_id());
    // Old routes unchanged (prefix preserved).
    assert_eq!(&a_after[..a_before.len()], &a_before[..], "sink A prefix changed");
    assert_eq!(&b_after[..b_before.len()], &b_before[..], "sink B prefix changed");
    // No event routed twice.
    let mut all: Vec<i64> =
        a_after.iter().chain(b_after.iter()).filter_map(Value::as_i64).collect();
    all.sort_unstable();
    assert_eq!(all, (0..50).collect::<Vec<_>>());
    running.shutdown();
}

#[test]
fn union_order_is_reproduced_after_crash() {
    // Classifier after a two-source merge: counts depend on interleaving.
    // After recovery, replay must follow the logged input order, so the
    // (class, count) outputs keep their exact pre-crash values.
    let mut b = GraphBuilder::new();
    let c = b.add_operator(
        Classifier::new(3),
        OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG)).with_checkpoint_every(8),
    );
    let s1 = b.source_into(c).unwrap();
    let s2 = b.source_into(c).unwrap();
    let sink = b.sink_from(c).unwrap();
    let running = b.build().unwrap().start();
    let op = streammine::common::ids::OperatorId::new(0);

    for i in 0..12 {
        running.source(s1).push(Value::Int(i * 2));
        running.source(s2).push(Value::Int(i * 2 + 1));
    }
    assert!(running.sink(sink).wait_final(24, Duration::from_secs(10)));
    let before = running.sink(sink).final_events_by_id();

    running.crash(op);
    running.recover(op);
    for i in 12..16 {
        running.source(s1).push(Value::Int(i * 2));
    }
    assert!(
        running.sink(sink).wait_final(28, Duration::from_secs(20)),
        "only {} of 28 after recovery",
        running.sink(sink).final_count()
    );
    let after = running.sink(sink).final_events_by_id();
    for pre in &before {
        let post = after.iter().find(|e| e.id == pre.id).expect("event vanished");
        assert_eq!(post.payload, pre.payload, "merge order diverged for {}", pre.id);
    }
    running.shutdown();
}

#[test]
fn system_time_window_replays_logged_arrival_times() {
    // The window an event lands in depends on ctx.now_micros() — logged.
    // After recovery, replay must reuse the logged times, keeping window
    // boundaries identical.
    let mut b = GraphBuilder::new();
    let w = b.add_operator(
        SystemTimeWindow::new(40_000, WindowAgg::Count),
        OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG)),
    );
    let src = b.source_into(w).unwrap();
    let sink = b.sink_from(w).unwrap();
    let running = b.build().unwrap().start();
    let op = streammine::common::ids::OperatorId::new(0);

    running.source(src).push(Value::Int(1));
    running.source(src).push(Value::Int(1));
    std::thread::sleep(Duration::from_millis(90));
    running.source(src).push(Value::Int(1)); // closes window 1 (count=2)
    assert!(running.sink(sink).wait_final(1, Duration::from_secs(10)));
    let before = running.sink(sink).final_events_by_id();
    assert_eq!(before[0].payload, Value::Float(2.0));

    running.crash(op);
    running.recover(op);
    std::thread::sleep(Duration::from_millis(90));
    running.source(src).push(Value::Int(1)); // closes window 2 (count=1)
    assert!(running.sink(sink).wait_final(2, Duration::from_secs(20)));
    let after = running.sink(sink).final_events_by_id();
    assert_eq!(after[0].payload, Value::Float(2.0), "window boundary moved across recovery");
    assert_eq!(after[1].payload, Value::Float(1.0));
    running.shutdown();
}

#[test]
fn crash_of_middle_operator_in_pipeline() {
    // src → relay1 → relay2 → sink; crash relay2 (has an upstream that is
    // an operator, exercising operator-to-operator replay).
    let mut b = GraphBuilder::new();
    let r1 = b.add_operator(
        StampedRelay::new(),
        OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG)),
    );
    let r2 =
        b.add_operator(RandomTagger, OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG)));
    b.connect(r1, r2).unwrap();
    let src = b.source_into(r1).unwrap();
    let sink = b.sink_from(r2).unwrap();
    let running = b.build().unwrap().start();

    for i in 0..15 {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(15, Duration::from_secs(10)));
    let before = running.sink(sink).final_events_by_id();

    running.crash(r2);
    running.recover(r2);
    for i in 15..25 {
        running.source(src).push(Value::Int(i));
    }
    assert!(
        running.sink(sink).wait_final(25, Duration::from_secs(20)),
        "only {} of 25 after mid-pipeline recovery",
        running.sink(sink).final_count()
    );
    let after = running.sink(sink).final_events_by_id();
    for pre in &before {
        let post = after.iter().find(|e| e.id == pre.id).expect("event vanished");
        assert_eq!(post.payload, pre.payload);
    }
    running.shutdown();
}

//! Observability integration tests: the metrics registry, the
//! speculation-lifecycle journal, and the latency-decomposition profile
//! observed end-to-end through a running graph.

use std::time::Duration;

use streammine::common::event::Value;
use streammine::core::{GraphBuilder, LoggingConfig, OperatorConfig, Running, SinkId, SourceId};
use streammine::obs::{validate_prometheus, JournalKind, Labels, Obs};
use streammine::operators::StampedRelay;

const EVENTS: u64 = 20;

fn pipeline(
    speculative: bool,
    log_latency: Duration,
    obs: Option<Obs>,
) -> (Running, SourceId, SinkId) {
    let mut b = GraphBuilder::new();
    if let Some(obs) = obs {
        b = b.with_obs(obs);
    }
    let cfg = |spec: bool| {
        if spec {
            OperatorConfig::speculative(LoggingConfig::simulated(log_latency))
        } else {
            OperatorConfig::logged(LoggingConfig::simulated(log_latency))
        }
    };
    let a = b.add_operator(StampedRelay::new(), cfg(speculative));
    let z = b.add_operator(StampedRelay::new(), cfg(speculative));
    b.connect(a, z).unwrap();
    let src = b.source_into(a).unwrap();
    let sink = b.sink_from(z).unwrap();
    (b.build().unwrap().start(), src, sink)
}

fn drive(running: &Running, src: SourceId, sink: SinkId) {
    for i in 0..EVENTS {
        running.source(src).push(Value::Int(i as i64));
    }
    assert!(running.sink(sink).wait_final(EVENTS as usize, Duration::from_secs(20)));
    // The sink observes the last Finalize slightly before the committing
    // node's coordinator meters it; give the counters a moment to converge.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while std::time::Instant::now() < deadline {
        let snap = running.metrics();
        let settled = (0..2u32).all(|op| {
            snap.counter("spec.finalized", Labels::op(op)).unwrap_or(0) >= EVENTS
                || snap.counter("spec.published", Labels::op(op)).unwrap_or(0) == 0
        });
        if settled {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn registry_meters_every_stage_of_a_speculative_pipeline() {
    let (running, src, sink) = pipeline(true, Duration::from_millis(1), None);
    drive(&running, src, sink);
    let snap = running.metrics();
    for op in 0..2u32 {
        assert_eq!(
            snap.counter("events.in", Labels::op_port(op, 0)),
            Some(EVENTS),
            "op{op} ingress count"
        );
        assert!(
            snap.counter("spec.published", Labels::op(op)).unwrap_or(0) >= EVENTS,
            "op{op} published speculative outputs"
        );
        assert_eq!(
            snap.counter("spec.finalized", Labels::op(op)),
            Some(EVENTS),
            "op{op} finalized every txn"
        );
        for h in
            ["stage.queue_wait_us", "stage.process_us", "stage.log_wait_us", "stage.commit_gate_us"]
        {
            let hist = snap.histogram(h, Labels::op(op)).unwrap_or_else(|| panic!("{h} op{op}"));
            assert_eq!(hist.count(), EVENTS, "{h} op{op} sample count");
        }
    }
    // Sink-side decomposition histograms saw every event.
    let sink_final: u64 = snap
        .samples
        .iter()
        .filter(|s| s.name == "sink.final_us")
        .filter_map(|s| snap.histogram("sink.final_us", s.labels))
        .map(|h| h.count())
        .sum();
    assert_eq!(sink_final, EVENTS, "sink.final_us sample count");
    running.shutdown();
}

#[test]
fn prometheus_exposition_is_lint_clean() {
    let (running, src, sink) = pipeline(true, Duration::from_millis(1), None);
    drive(&running, src, sink);
    let prom = running.prometheus();
    let samples = validate_prometheus(&prom).expect("exposition must be well-formed");
    assert!(samples > 20, "expected a substantive exposition, got {samples} samples");
    assert!(prom.contains("# TYPE events_in counter"), "missing counter TYPE line:\n{prom}");
    assert!(
        prom.contains("# TYPE stage_process_us histogram"),
        "missing histogram TYPE line:\n{prom}"
    );
    let json = running.metrics_json();
    assert!(json.contains("\"events.in\""), "JSON export missing metric: {json}");
    running.shutdown();
}

#[test]
fn tracing_journal_captures_speculation_lifecycle() {
    let (running, src, sink) = pipeline(true, Duration::from_millis(1), Some(Obs::tracing()));
    drive(&running, src, sink);
    let journal = &running.obs().journal;
    let count = |pred: &dyn Fn(&JournalKind) -> bool| journal.count_matching(|e| pred(&e.kind));
    assert!(count(&|k| matches!(k, JournalKind::Ingest { .. })) >= EVENTS as usize);
    assert!(count(&|k| matches!(k, JournalKind::SpecPublish { .. })) >= EVENTS as usize);
    assert!(count(&|k| matches!(k, JournalKind::LogStable { .. })) >= EVENTS as usize);
    assert!(count(&|k| matches!(k, JournalKind::Commit { .. })) >= EVENTS as usize);
    let dump = running.journal_dump();
    assert!(dump.contains("spec-publish"), "render should show lifecycle events:\n{dump}");
    running.shutdown();
}

#[test]
fn journal_is_silent_by_default() {
    let (running, src, sink) = pipeline(true, Duration::from_millis(1), None);
    drive(&running, src, sink);
    // Default verbosity keeps the trace ring empty: zero journal overhead
    // on the hot path unless tracing is requested.
    assert!(running.obs().journal.is_empty(), "default journal must stay empty");
    running.shutdown();
}

#[test]
fn concurrent_registration_is_idempotent_and_lint_clean_under_scrape() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use streammine::obs::{json, prometheus_text, Registry};

    const THREADS: u32 = 8;
    const ROUNDS: u64 = 200;
    let registry = Arc::new(Registry::new());
    let done = Arc::new(AtomicBool::new(false));

    // A scraper hammers the exporters while registration races below; every
    // intermediate exposition must already be lint-clean.
    let scraper = {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !done.load(Ordering::Relaxed) {
                let snap = registry.snapshot();
                validate_prometheus(&prometheus_text(&snap))
                    .unwrap_or_else(|e| panic!("mid-race exposition invalid: {e}"));
                let _ = json(&snap);
                scrapes += 1;
            }
            scrapes
        })
    };

    // Every thread registers the *same* (name, op, port) cells, every round:
    // registration must be idempotent, so all increments land on one cell.
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    for op in 0..3u32 {
                        registry.counter("race.events", Labels::op_port(op, 0)).incr();
                        registry.histogram("race.latency_us", Labels::op(op)).record(i);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().unwrap();
    assert!(scrapes > 0, "scraper never ran");

    let snap = registry.snapshot();
    for op in 0..3u32 {
        assert_eq!(
            snap.counter("race.events", Labels::op_port(op, 0)),
            Some(THREADS as u64 * ROUNDS),
            "op{op}: racing registrations must converge on a single counter cell"
        );
        assert_eq!(
            snap.histogram("race.latency_us", Labels::op(op)).map(|h| h.count()),
            Some(THREADS as u64 * ROUNDS),
            "op{op}: racing registrations must converge on a single histogram cell"
        );
    }
    // No duplicate (name, labels) samples survived the race.
    for (i, a) in snap.samples.iter().enumerate() {
        for b in &snap.samples[i + 1..] {
            assert!(
                !(a.name == b.name && a.labels == b.labels),
                "duplicate sample {}{:?} after concurrent registration",
                a.name,
                a.labels
            );
        }
    }
    validate_prometheus(&prometheus_text(&snap)).expect("final exposition must be lint-clean");
}

#[test]
fn decomposition_shows_spec_arrival_independent_of_log_latency() {
    // With a 40 ms decision log, a speculative relay's first output must
    // reach the sink well before the log is stable; the non-speculative
    // pipeline pays both log writes before anything arrives. Bounds are
    // generous (half / one log latency) to stay robust on slow CI.
    let log = Duration::from_millis(40);
    let log_us = log.as_micros() as u64;
    let first_arrival_p50 = |speculative: bool| -> u64 {
        let (running, src, sink) = pipeline(speculative, log, None);
        drive(&running, src, sink);
        let snap = running.metrics();
        let p50 = snap
            .samples
            .iter()
            .filter(|s| s.name == "sink.first_arrival_us")
            .filter_map(|s| snap.histogram("sink.first_arrival_us", s.labels))
            .find(|h| h.count() > 0)
            .expect("sink.first_arrival_us recorded")
            .quantile(0.5);
        running.shutdown();
        p50
    };
    let spec = first_arrival_p50(true);
    let nonspec = first_arrival_p50(false);
    assert!(
        spec < log_us / 2,
        "speculative first arrival {spec} us should hide the {log_us} us log"
    );
    assert!(
        nonspec >= log_us,
        "non-spec first arrival {nonspec} us should pay the {log_us} us log"
    );
}

//! Overload robustness: credit-based backpressure, bounded speculation,
//! and the deadlock-freedom of the replay/credit protocol.
//!
//! These tests run a pipeline with deliberately *tight* flow-control
//! knobs — small link credit windows, small sender caps, small intakes —
//! so that a stalled consumer saturates every hop. The claims:
//!
//! * backpressure only ever *delays* outputs, never changes a byte;
//! * every queue stays within its configured bound while saturated;
//! * stall episodes are journaled symmetrically (stall ⇔ resume) and
//!   metered;
//! * crash recovery *while saturated* completes, because replay traffic
//!   draws from a reserved credit class and control-plane work is never
//!   gated by the overload stall (the deadlock-freedom argument);
//! * speculation admission caps pace a speculative operator down to
//!   log-stable progress instead of aborting or growing memory.

use std::time::Duration;

use streammine::common::event::{Event, Value};
use streammine::common::ids::OperatorId;
use streammine::core::{
    GraphBuilder, LoggingConfig, NodeConfig, OpCtx, Operator, OperatorConfig, Running, SinkId,
    SourceId,
};
use streammine::net::{LinkConfig, SenderLimits};
use streammine::obs::{JournalKind, Labels};
use streammine::stm::StmAbort;

const FAST_LOG: Duration = Duration::from_micros(200);
const EVENTS: u64 = 48;

// Tight overload knobs: small enough that a stalled sink saturates the
// whole chain within a handful of events, large enough that the pipeline
// still makes progress between stall episodes.
const LINK_CAPACITY: usize = 8;
const REPLAY_RESERVE: usize = 4;
const PENDING_CAP: usize = 8;
const INTAKE_CAPACITY: usize = 16;

/// Non-deterministic relay (same shape as the chaos suite): byte-identical
/// outputs require bit-exact determinant replay, so backpressure-induced
/// reprocessing or recovery cannot hide behind deterministic operators.
struct RandomTagger;

impl Operator for RandomTagger {
    fn name(&self) -> &str {
        "random-tagger"
    }
    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        let tag = ctx.random_u64();
        ctx.emit(Value::record(vec![event.payload.clone(), Value::Int(tag as i64)]));
        Ok(())
    }
}

/// src → tagger → tagger → tagger → sink with tight flow-control knobs on
/// every layer: link credit windows, sender saturation caps, and intake
/// lanes.
fn tight_pipeline() -> (Running, SourceId, SinkId) {
    let mut b = GraphBuilder::new()
        .with_links(
            LinkConfig::instant().with_capacity(LINK_CAPACITY).with_replay_reserve(REPLAY_RESERVE),
        )
        .with_sender_limits(SenderLimits { pending_cap: PENDING_CAP, retained_cap: usize::MAX });
    let cfg = || {
        OperatorConfig::logged(LoggingConfig::simulated(FAST_LOG))
            .with_checkpoint_every(7)
            .with_node(NodeConfig { intake_capacity: INTAKE_CAPACITY, ..NodeConfig::default() })
    };
    let op0 = b.add_operator(RandomTagger, cfg());
    let op1 = b.add_operator(RandomTagger, cfg());
    let op2 = b.add_operator(RandomTagger, cfg());
    b.connect(op0, op1).unwrap();
    b.connect(op1, op2).unwrap();
    let src = b.source_into(op0).unwrap();
    let sink = b.sink_from(op2).unwrap();
    (b.build().unwrap().start(), src, sink)
}

fn payloads(events: &[Event]) -> Vec<Value> {
    events.iter().map(|e| e.payload.clone()).collect()
}

fn run_reference() -> Vec<Value> {
    let (running, src, sink) = tight_pipeline();
    for i in 0..EVENTS {
        running.source(src).push(Value::Int(i as i64));
    }
    assert!(running.sink(sink).wait_final(EVENTS as usize, Duration::from_secs(30)));
    let out = payloads(&running.sink(sink).final_events_by_id());
    running.shutdown();
    out
}

/// Per-op journal reconciliation: every stall entry (edge stall or spec
/// cap hit) has a matching resume once the run has quiesced, and the
/// `backpressure.stalls` counter agrees with the journal.
fn assert_stalls_reconcile(running: &Running) {
    let journal = running.obs().journal.events();
    for op in 0..running.operator_count() as u32 {
        let stalls = journal
            .iter()
            .filter(|e| e.op == Some(op))
            .filter(|e| {
                matches!(
                    e.kind,
                    JournalKind::BackpressureStall { .. } | JournalKind::SpecCapHit { .. }
                )
            })
            .count() as u64;
        let resumes = journal
            .iter()
            .filter(|e| e.op == Some(op))
            .filter(|e| matches!(e.kind, JournalKind::BackpressureResume { .. }))
            .count() as u64;
        assert_eq!(
            stalls,
            resumes,
            "op{op}: {stalls} stall entries but {resumes} resumes after quiesce\n{}",
            running.journal_dump()
        );
        let counted = running
            .obs()
            .registry
            .counter_value("backpressure.stalls", Labels::op(op))
            .unwrap_or(0);
        assert_eq!(
            counted, stalls,
            "op{op}: backpressure.stalls counter disagrees with the journal"
        );
    }
    streammine::chaos::verify_recovery_counters(&running.metrics(), &[], &journal)
        .unwrap_or_else(|e| panic!("{e}\n{}", running.journal_dump()));
}

/// Every edge's retry queue stayed within its configured bound. The cap is
/// soft — an in-flight event's outputs may land after the gate check — so
/// the hard bound is `pending_cap` plus a small per-event overshoot.
fn assert_queues_bounded(running: &Running) {
    let reg = &running.obs().registry;
    for op in 0..running.operator_count() as u32 {
        let hwm = reg.gauge_value("edge.pending_hwm", Labels::op_port(op, 0)).unwrap_or(0);
        assert!(
            hwm <= (PENDING_CAP + 4) as i64,
            "op{op} edge 0: pending high-water mark {hwm} exceeds cap {PENDING_CAP} + overshoot"
        );
        let depth = reg.gauge_value("node.intake_depth", Labels::op(op)).unwrap_or(0);
        assert!(
            depth <= INTAKE_CAPACITY as i64,
            "op{op}: intake depth {depth} exceeds its bounded lane capacity"
        );
    }
}

/// A sink stalled for many drain intervals saturates every hop; all queues
/// stay within bounds, stall episodes reconcile, and once the stall ends
/// the outputs are byte-identical to an unstalled run.
#[test]
fn stalled_sink_backpressure_is_bounded_and_precise() {
    let reference = run_reference();
    let (running, src, sink) = tight_pipeline();

    // Stall the sink for far longer than it takes the tight windows to
    // fill (8-credit links drain in microseconds; 300ms ≫ 10× that).
    running.sink(sink).stall_for(Duration::from_millis(300));
    for i in 0..EVENTS {
        // Push straight into the stall: once every window is full this
        // call blocks on the source link's credits — the source is the
        // last hop of the backpressure chain. Paced pushes keep the
        // micro-batching transport from coalescing the whole workload
        // into a handful of jumbo frames that never consume the window.
        running.source(src).push(Value::Int(i as i64));
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        running.sink(sink).wait_final(EVENTS as usize, Duration::from_secs(30)),
        "stalled at {}/{EVENTS}\n{}",
        running.sink(sink).final_count(),
        running.journal_dump()
    );
    // Let stalled nodes notice the drained queues and journal resumes.
    std::thread::sleep(Duration::from_millis(100));

    let out = payloads(&running.sink(sink).final_events_by_id());
    assert_eq!(out, reference, "backpressure changed output bytes");

    let total_stalls = running.obs().registry.counter_total("backpressure.stalls");
    assert!(total_stalls >= 1, "a 300ms sink stall must trigger at least one stall episode");
    assert_queues_bounded(&running);
    assert_stalls_reconcile(&running);

    // Stall latency is attributed: the stall histogram recorded the
    // episode(s) the journal describes.
    let stall_us: u64 = (0..running.operator_count() as u32)
        .filter_map(|op| {
            running
                .obs()
                .registry
                .histogram_snapshot("backpressure.stall_us", Labels::op(op))
                .map(|h| h.count())
        })
        .sum();
    assert_eq!(stall_us, total_stalls, "every stall episode must record its duration");
    running.shutdown();
}

/// The deadlock-freedom property, exercised rather than argued: a node
/// crashes *while the whole chain is saturated* and recovery still
/// completes, because (a) replay requests ride the ungated control lane
/// and (b) replayed data draws from the reserved replay credit class, so
/// replay and credit grants never wait on each other. A lost race on the
/// reserve is retried by the replay watchdog.
#[test]
fn crash_while_saturated_recovers_without_deadlock() {
    let reference = run_reference();
    let (running, src, sink) = tight_pipeline();

    // Saturate: stall the sink, then push the full workload from a helper
    // thread (the source blocks once the chain is full).
    running.sink(sink).stall_for(Duration::from_millis(500));
    std::thread::scope(|s| {
        let pusher = s.spawn(|| {
            for i in 0..EVENTS {
                running.source(src).push(Value::Int(i as i64));
            }
        });
        // Give the chain time to wedge solid, then kill the middle
        // operator mid-stall and recover it while everything around it is
        // saturated.
        std::thread::sleep(Duration::from_millis(150));
        let op1 = OperatorId::new(1);
        running.crash(op1);
        running.recover(op1);
        pusher.join().unwrap();
    });
    assert!(
        running.sink(sink).wait_final(EVENTS as usize, Duration::from_secs(60)),
        "recovery deadlocked at {}/{EVENTS} under saturation\n{}",
        running.sink(sink).final_count(),
        running.journal_dump()
    );
    let out = payloads(&running.sink(sink).final_events_by_id());
    assert_eq!(out, reference, "crash-while-saturated recovery changed output bytes");
    assert_queues_bounded(&running);
    running.shutdown();
}

/// Speculation admission control: with a tiny open-transaction cap, a
/// speculative operator hits the cap, stalls speculative intake, and
/// paces itself by log stability — it never aborts and the outputs are
/// byte-identical to an uncapped run.
#[test]
fn speculation_cap_paces_without_aborting() {
    const SPEC_EVENTS: u64 = 24;
    // Slow log: speculation runs ahead of stability, so open transactions
    // pile up against the cap.
    let slow_log = Duration::from_millis(2);
    let build = |caps: NodeConfig| {
        let mut b = GraphBuilder::new();
        let cfg = OperatorConfig::speculative(LoggingConfig::simulated(slow_log)).with_node(caps);
        let op0 = b.add_operator(RandomTagger, cfg);
        let src = b.source_into(op0).unwrap();
        let sink = b.sink_from(op0).unwrap();
        (b.build().unwrap().start(), src, sink)
    };

    let reference = {
        let (running, src, sink) = build(NodeConfig::default());
        for i in 0..SPEC_EVENTS {
            running.source(src).push(Value::Int(i as i64));
        }
        assert!(running.sink(sink).wait_final(SPEC_EVENTS as usize, Duration::from_secs(30)));
        let out = payloads(&running.sink(sink).final_events_by_id());
        running.shutdown();
        out
    };

    let (running, src, sink) =
        build(NodeConfig { max_open_speculations: 2, ..NodeConfig::default() });
    for i in 0..SPEC_EVENTS {
        running.source(src).push(Value::Int(i as i64));
    }
    assert!(
        running.sink(sink).wait_final(SPEC_EVENTS as usize, Duration::from_secs(30)),
        "capped speculation stalled at {}/{SPEC_EVENTS}\n{}",
        running.sink(sink).final_count(),
        running.journal_dump()
    );
    std::thread::sleep(Duration::from_millis(100));

    let out = payloads(&running.sink(sink).final_events_by_id());
    assert_eq!(out, reference, "speculation cap changed output bytes");

    let cap_hits = running.obs().registry.counter_total("spec.cap_hits");
    assert!(
        cap_hits >= 1,
        "24 events against a 2-transaction window on a 2ms log must hit the cap\n{}",
        running.journal_dump()
    );
    let journal = running.obs().journal.events();
    assert!(
        journal.iter().any(|e| matches!(e.kind, JournalKind::SpecCapHit { .. })),
        "cap hits must be journaled"
    );
    assert_stalls_reconcile(&running);
    running.shutdown();
}

//! Payload-ownership semantics across the graph: fan-out shares one
//! refcounted payload buffer per event (zero deep copies on the send
//! path), branches stay logically independent, batched transport preserves
//! content and order, and speculative re-emission after a rollback carries
//! the revised payload under a bumped version.

use std::time::Duration;

use streammine::common::event::Value;
use streammine::core::{GraphBuilder, OperatorConfig, Running, SinkId};
use streammine::operators::{Map, Union};

fn str_ptr(v: &Value) -> *const u8 {
    v.as_str().expect("string payload").as_ptr()
}

fn wait_until(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while !done() {
        if std::time::Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    true
}

/// src → union → {identity map, wrapping map} → two sinks.
fn fan_out_graph() -> (Running, streammine::core::SourceId, SinkId, SinkId) {
    let mut b = GraphBuilder::new();
    let fan = b.add_operator(Union::new(), OperatorConfig::plain());
    let identity = b.add_operator(Map::new(Value::clone), OperatorConfig::plain());
    let wrapper = b.add_operator(
        Map::new(|v| Value::record(vec![v.clone(), Value::Str("enriched".into())])),
        OperatorConfig::plain(),
    );
    b.connect(fan, identity).unwrap();
    b.connect(fan, wrapper).unwrap();
    let src = b.source_into(fan).unwrap();
    let plain_sink = b.sink_from(identity).unwrap();
    let wrapped_sink = b.sink_from(wrapper).unwrap();
    (b.build().unwrap().start(), src, plain_sink, wrapped_sink)
}

#[test]
fn fan_out_shares_one_payload_buffer_end_to_end() {
    let (running, src, plain_sink, wrapped_sink) = fan_out_graph();
    let payload = Value::from("one-buffer-for-every-branch");
    let source_ptr = str_ptr(&payload);
    running.source(src).push(payload);
    assert!(running.sink(plain_sink).wait_final(1, Duration::from_secs(5)));
    assert!(running.sink(wrapped_sink).wait_final(1, Duration::from_secs(5)));

    // The links are in-process, so the bytes the sinks observe are the
    // very allocation the test pushed: forwarding through union, fan-out,
    // map, batcher and sink bumped refcounts, never copied the payload.
    let plain = running.sink(plain_sink).final_events()[0].payload.clone();
    assert_eq!(plain, Value::from("one-buffer-for-every-branch"));
    assert_eq!(str_ptr(&plain), source_ptr, "identity branch must share the source buffer");

    let wrapped = running.sink(wrapped_sink).final_events()[0].payload.clone();
    let inner = wrapped.field(0).expect("wrapped record field");
    assert_eq!(str_ptr(inner), source_ptr, "wrapped branch must share the source buffer");
    running.shutdown();
}

#[test]
fn fan_out_branches_observe_independent_logical_payloads() {
    let (running, src, plain_sink, wrapped_sink) = fan_out_graph();
    for i in 0..8 {
        running.source(src).push(Value::from(format!("event-{i}")));
    }
    assert!(running.sink(plain_sink).wait_final(8, Duration::from_secs(5)));
    assert!(running.sink(wrapped_sink).wait_final(8, Duration::from_secs(5)));

    // The wrapper branch replaced its payload with a record; the identity
    // branch still sees the untouched strings — one branch's rewrite can
    // never leak into a sibling that shares the buffer.
    for (i, ev) in running.sink(plain_sink).final_events().iter().enumerate() {
        assert_eq!(ev.payload, Value::from(format!("event-{i}")));
    }
    for (i, ev) in running.sink(wrapped_sink).final_events().iter().enumerate() {
        assert_eq!(ev.payload.field(0), Some(&Value::from(format!("event-{i}"))));
        assert_eq!(ev.payload.field(1), Some(&Value::Str("enriched".into())));
    }
    running.shutdown();
}

#[test]
fn batched_injection_preserves_content_and_order() {
    let mut b = GraphBuilder::new();
    let map = b.add_operator(Map::new(|v| v.clone()), OperatorConfig::plain());
    let src = b.source_into(map).unwrap();
    let sink = b.sink_from(map).unwrap();
    let running = b.build().unwrap().start();

    // One DataBatch frame in, re-batched frames out: everything arrives
    // exactly once, in order.
    let ids = running.source(src).push_batch((0..100).map(Value::Int).collect());
    assert_eq!(ids.len(), 100);
    assert!(running.sink(sink).wait_final(100, Duration::from_secs(10)));
    assert_eq!(running.sink(sink).final_count(), 100);
    let payloads: Vec<Value> =
        running.sink(sink).final_events().into_iter().map(|e| e.payload).collect();
    assert_eq!(payloads, (0..100).map(Value::Int).collect::<Vec<_>>());
    running.shutdown();
}

#[test]
fn speculative_reemission_after_rollback_carries_revised_payload() {
    let mut b = GraphBuilder::new();
    let map = b.add_operator(
        Map::new(|v| Value::record(vec![v.clone()])),
        OperatorConfig::speculative_unlogged(),
    );
    let src = b.source_into(map).unwrap();
    let sink = b.sink_from(map).unwrap();
    let running = b.build().unwrap().start();
    let source = running.source(src);
    let sink = running.sink(sink);

    let id = source.push_speculative(Value::from("draft"));
    assert!(
        wait_until(Duration::from_secs(5), || sink.records().iter().any(|r| r
            .event
            .payload
            .field(0)
            == Some(&Value::from("draft")))),
        "first speculative emission not observed"
    );

    // The input is replaced (E1' → E1'' in §3.1): the operator rolls the
    // transaction back, re-executes against the revised content, and
    // re-emits its output under version + 1.
    source.revise(id, 1, Value::from("revised"));
    assert!(
        wait_until(Duration::from_secs(5), || sink
            .records()
            .iter()
            .any(|r| r.event.version >= 1
                && r.event.payload.field(0) == Some(&Value::from("revised")))),
        "revised re-emission not observed"
    );

    source.finalize(id, 1);
    assert!(sink.wait_final(1, Duration::from_secs(5)));
    let final_ev = &sink.final_events()[0];
    assert_eq!(final_ev.payload.field(0), Some(&Value::from("revised")));
    assert!(final_ev.version >= 1, "revision must carry a bumped version");
    let record = &sink.records()[0];
    assert!(record.versions_seen >= 2, "sink must have observed both versions");
    running.shutdown();
}

//! Causal-tracing integration tests: critical-path attribution across a
//! multi-hop speculative graph, trace-id reconstruction from the journal,
//! the live HTTP telemetry endpoints, and the Chrome trace export.

use std::io::{Read as _, Write as _};
use std::time::Duration;

use streammine::common::event::Value;
use streammine::core::{GraphBuilder, LoggingConfig, OperatorConfig, Running, SinkId, SourceId};
use streammine::obs::{validate_chrome_trace, validate_prometheus, Obs};
use streammine::operators::StampedRelay;

const EVENTS: u64 = 8;
const SLOW_LOG: Duration = Duration::from_millis(40);
const FAST_LOG: Duration = Duration::from_millis(1);

/// src → relay → relay → relay → sink, all speculative, traced at rate 1.
/// The middle operator's decision log is ~40x slower than its neighbours,
/// so it must dominate every sink-side critical path.
fn slow_middle_pipeline() -> (Running, SourceId, SinkId) {
    let mut b = GraphBuilder::new().with_obs(Obs::traced(1));
    let cfg = |log: Duration| OperatorConfig::speculative(LoggingConfig::simulated(log));
    let a = b.add_operator(StampedRelay::new(), cfg(FAST_LOG));
    let m = b.add_operator(StampedRelay::new(), cfg(SLOW_LOG));
    let z = b.add_operator(StampedRelay::new(), cfg(FAST_LOG));
    b.connect(a, m).unwrap();
    b.connect(m, z).unwrap();
    let src = b.source_into(a).unwrap();
    let sink = b.sink_from(z).unwrap();
    (b.build().unwrap().start(), src, sink)
}

fn drive(running: &Running, src: SourceId, sink: SinkId) {
    for i in 0..EVENTS {
        running.source(src).push(Value::Int(i as i64));
    }
    assert!(running.sink(sink).wait_final(EVENTS as usize, Duration::from_secs(30)));
}

/// §4-style latency decomposition, attributed per event: with one slow
/// decision log in the middle of a three-hop speculative chain, the sink's
/// final-latency critical path must name that log on every trace — and the
/// speculative first arrival must land long before the slow log is stable
/// (first-arrival records never include a log-wait stage).
#[test]
fn critical_path_names_the_slow_decision_log() {
    let (running, src, sink) = slow_middle_pipeline();
    drive(&running, src, sink);
    let slow_us = SLOW_LOG.as_micros() as u64;

    // Summaries land when the commit gate opens; give them a beat to settle.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while (running.obs().tracer.summaries().iter().filter(|s| s.critical.is_some()).count() as u64)
        < EVENTS
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }

    let summaries = running.obs().tracer.summaries();
    let finals: Vec<_> = summaries.iter().filter(|s| s.critical.is_some()).collect();
    assert!(finals.len() as u64 >= EVENTS, "expected {EVENTS} finalized summaries: {summaries:?}");
    for s in &finals {
        let critical = s.critical.as_ref().unwrap();
        assert_eq!(
            critical.op, 1,
            "critical path must name the slow middle log, got op{}: {s:?}",
            critical.op
        );
        assert!(
            critical.log_wait_us >= slow_us / 2,
            "critical log-wait {}us should reflect the {slow_us}us log",
            critical.log_wait_us
        );
        let first = s.first_arrival_us.expect("speculative run records a first arrival");
        assert!(
            first < critical.log_wait_us,
            "first arrival {first}us must precede the critical log wait {}us",
            critical.log_wait_us
        );
        assert!(first < slow_us / 2, "first arrival {first}us should hide the {slow_us}us log");
        assert!(
            s.final_us >= slow_us / 2,
            "final latency {}us cannot beat the {slow_us}us stable-log gate",
            s.final_us
        );
    }
    running.shutdown();
}

/// Satellite: grep-ability. Every hop journals its lifecycle with the
/// event's trace id, so filtering the journal dump on one trace id
/// reconstructs that event's full path through the graph.
#[test]
fn journal_grep_by_trace_id_reconstructs_event_path() {
    let (running, src, sink) = slow_middle_pipeline();
    drive(&running, src, sink);

    let summaries = running.obs().tracer.summaries();
    let trace_id = summaries.first().expect("at least one traced event").trace_id;
    let needle = format!(" trace={trace_id}");
    let dump = running.journal_dump();
    let lines: Vec<&str> = dump.lines().filter(|l| l.contains(&needle)).collect();
    assert!(
        lines.len() >= 3,
        "trace {trace_id} should appear at every hop, found {} lines:\n{dump}",
        lines.len()
    );
    for op in 0..3 {
        let tag = format!("op{op}]");
        assert!(
            lines.iter().any(|l| l.contains(&tag)),
            "trace {trace_id} missing hop op{op}:\n{}",
            lines.join("\n")
        );
    }
    // The path covers the whole lifecycle, not just ingestion.
    for stage in ["ingest", "spec-publish", "commit"] {
        assert!(
            lines.iter().any(|l| l.contains(stage)),
            "trace {trace_id} missing `{stage}` records:\n{}",
            lines.join("\n")
        );
    }
    running.shutdown();
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to telemetry endpoint");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("well-formed HTTP response");
    (head.to_string(), body.to_string())
}

/// The live HTTP endpoint serves all four telemetry views of a running,
/// traced graph: Prometheus metrics, JSON metrics, the journal dump, and
/// the Chrome trace export.
#[test]
fn http_endpoint_serves_live_telemetry() {
    let (running, src, sink) = slow_middle_pipeline();
    drive(&running, src, sink);
    let server = running.serve_http("127.0.0.1:0").expect("bind telemetry endpoint");
    let addr = server.local_addr();

    let (head, prom) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    validate_prometheus(&prom).expect("live /metrics must be lint-clean");
    assert!(prom.contains("events_in"), "live exposition missing counters:\n{prom}");

    let (_, json) = http_get(addr, "/metrics.json");
    assert!(json.contains("\"events.in\""), "JSON metrics missing counter: {json}");

    let (_, journal) = http_get(addr, "/journal");
    assert!(journal.contains("spec-publish"), "journal view missing lifecycle:\n{journal}");
    assert!(journal.contains("trace="), "journal view missing trace ids:\n{journal}");

    let (_, traces) = http_get(addr, "/traces");
    let events = validate_chrome_trace(&traces).expect("live /traces must be valid");
    assert!(events > 0, "trace export should carry events");

    let (head, _) = http_get(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    server.stop();
    running.shutdown();
}

/// The Chrome export of a real run is syntactically valid and carries the
/// per-hop slices, metadata names, and sink instants Perfetto renders.
#[test]
fn chrome_trace_export_is_perfetto_loadable() {
    let (running, src, sink) = slow_middle_pipeline();
    drive(&running, src, sink);
    // Let the last commit-gate spans close before exporting.
    std::thread::sleep(Duration::from_millis(50));
    let trace = running.chrome_trace();
    let events = validate_chrome_trace(&trace).expect("chrome trace must validate");
    // 3 hops x EVENTS complete slices, plus process metadata and instants.
    assert!(events as u64 >= 3 * EVENTS, "expected a slice per hop, got {events} events");
    assert!(trace.contains("\"displayTimeUnit\""), "missing displayTimeUnit");
    assert!(trace.contains("\"ph\":\"X\""), "missing complete slices");
    assert!(trace.contains("\"ph\":\"M\""), "missing process metadata");
    running.shutdown();
}

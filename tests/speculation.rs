//! Speculation integration tests: the paper's §3 behaviours observed
//! end-to-end through the engine.

use std::time::{Duration, Instant};

use streammine::common::event::{Event, Value};
use streammine::common::ids::OperatorId;
use streammine::core::{
    GraphBuilder, LoggingConfig, OpCtx, Operator, OperatorConfig, Running, SinkId, SourceId,
};
use streammine::operators::{Classifier, StampedRelay};
use streammine::stm::StmAbort;

fn pipeline(depth: usize, speculative: bool, log_latency: Duration) -> (Running, SourceId, SinkId) {
    let mut b = GraphBuilder::new();
    let mut prev = None;
    let mut first = None;
    for _ in 0..depth {
        let cfg = if speculative {
            OperatorConfig::speculative(LoggingConfig::simulated(log_latency))
        } else {
            OperatorConfig::logged(LoggingConfig::simulated(log_latency))
        };
        let op = b.add_operator(StampedRelay::new(), cfg);
        if let Some(p) = prev {
            b.connect(p, op).unwrap();
        } else {
            first = Some(op);
        }
        prev = Some(op);
    }
    let src = b.source_into(first.unwrap()).unwrap();
    let sink = b.sink_from(prev.unwrap()).unwrap();
    (b.build().unwrap().start(), src, sink)
}

#[test]
fn speculative_pipeline_produces_identical_final_payloads() {
    let run = |speculative: bool| -> Vec<Value> {
        let (running, src, sink) = pipeline(3, speculative, Duration::from_micros(500));
        for i in 0..10 {
            running.source(src).push(Value::Int(i));
        }
        assert!(running.sink(sink).wait_final(10, Duration::from_secs(15)));
        let out = running.sink(sink).final_events_by_id().into_iter().map(|e| e.payload).collect();
        running.shutdown();
        out
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn speculative_events_arrive_before_they_finalize() {
    let (running, src, sink) = pipeline(2, true, Duration::from_millis(30));
    running.source(src).push(Value::Int(7));
    // The speculative version shows up quickly...
    let deadline = Instant::now() + Duration::from_secs(5);
    while running.sink(sink).seen_count() == 0 {
        assert!(Instant::now() < deadline, "speculative event never arrived");
        std::thread::yield_now();
    }
    let spec_seen_at = Instant::now();
    assert_eq!(running.sink(sink).final_count(), 0, "must not be final before logs stabilize");
    // ...and finalizes once the logs are stable.
    assert!(running.sink(sink).wait_final(1, Duration::from_secs(10)));
    assert!(spec_seen_at.elapsed() >= Duration::from_millis(1));
    running.shutdown();
}

#[test]
fn speculation_parallelizes_pipeline_logging() {
    // The paper's Figure 3: with per-hop log latency L and depth D, the
    // non-speculative pipeline pays ~D·L of final latency, the speculative
    // one ~L (all logs written in parallel). With L = 25 ms and D = 4 the
    // gap is wide enough to assert robustly even on a loaded CI machine.
    let measure = |speculative: bool| -> f64 {
        let (running, src, sink) = pipeline(4, speculative, Duration::from_millis(25));
        for i in 0..5 {
            running.source(src).push(Value::Int(i));
        }
        assert!(running.sink(sink).wait_final(5, Duration::from_secs(30)));
        let lats = running.sink(sink).final_latencies_us();
        running.shutdown();
        lats.iter().sum::<f64>() / lats.len() as f64
    };
    let nonspec = measure(false);
    let spec = measure(true);
    assert!(
        spec < nonspec * 0.6,
        "speculation should parallelize logs: spec={spec:.0}us nonspec={nonspec:.0}us"
    );
    // Non-spec should be at least ~4x one log write; spec around ~1-2x.
    assert!(nonspec > 80_000.0, "non-speculative pipeline unexpectedly fast: {nonspec:.0}us");
}

#[test]
fn speculative_input_revision_revises_downstream_output() {
    // §3.1: E1′ is replaced by E1″; the consumer's output must be revised
    // and only then finalized.
    struct Echo;
    impl Operator for Echo {
        fn process(&self, ctx: &mut OpCtx<'_, '_>, ev: &Event) -> Result<(), StmAbort> {
            ctx.emit(Value::Int(ev.payload.as_i64().unwrap_or(0) + 100));
            Ok(())
        }
    }
    let mut b = GraphBuilder::new();
    let op = b.add_operator(Echo, OperatorConfig::speculative_unlogged());
    let src = b.source_into(op).unwrap();
    let sink = b.sink_from(op).unwrap();
    let running = b.build().unwrap().start();

    let id = running.source(src).push_speculative(Value::Int(1));
    let deadline = Instant::now() + Duration::from_secs(5);
    while running.sink(sink).seen_count() == 0 {
        assert!(Instant::now() < deadline);
        std::thread::yield_now();
    }
    assert_eq!(running.sink(sink).final_count(), 0);

    // Revise, then finalize the revision.
    running.source(src).revise(id, 1, Value::Int(2));
    running.source(src).finalize(id, 1);
    assert!(running.sink(sink).wait_final(1, Duration::from_secs(10)));
    let out = running.sink(sink).final_events();
    assert_eq!(out[0].payload, Value::Int(102), "output must reflect the revised input");
    running.shutdown();
}

#[test]
fn revoked_speculative_input_revokes_downstream_output() {
    struct Echo;
    impl Operator for Echo {
        fn process(&self, ctx: &mut OpCtx<'_, '_>, ev: &Event) -> Result<(), StmAbort> {
            ctx.emit(ev.payload.clone());
            Ok(())
        }
    }
    let mut b = GraphBuilder::new();
    let op = b.add_operator(Echo, OperatorConfig::speculative_unlogged());
    let src = b.source_into(op).unwrap();
    let sink = b.sink_from(op).unwrap();
    let running = b.build().unwrap().start();

    let id = running.source(src).push_speculative(Value::Int(9));
    let deadline = Instant::now() + Duration::from_secs(5);
    while running.sink(sink).seen_count() == 0 {
        assert!(Instant::now() < deadline);
        std::thread::yield_now();
    }
    running.source(src).revoke(id);
    let deadline = Instant::now() + Duration::from_secs(5);
    while running.sink(sink).revoked().is_empty() {
        assert!(Instant::now() < deadline, "revoke never propagated");
        std::thread::yield_now();
    }
    assert_eq!(running.sink(sink).final_count(), 0);
    running.shutdown();
}

#[test]
fn final_event_overtakes_unrelated_speculation() {
    // §3.1's no-collision case: E1′ (speculative) touches class A, E2
    // (final) touches class B — E2's output must finalize without waiting
    // for E1's log/finalize.
    let mut b = GraphBuilder::new();
    // The paper's out-of-order finalization (§3.1) needs the aggressive
    // commit order: a later independent transaction may commit while the
    // earlier speculation is still open.
    let stm = streammine::stm::StmConfig {
        commit_order: streammine::stm::CommitOrder::Conflict,
        ..Default::default()
    };
    let c =
        b.add_operator(Classifier::new(64), OperatorConfig::speculative_unlogged().with_stm(stm));
    let spec_src = b.source_into(c).unwrap();
    let final_src = b.source_into(c).unwrap();
    let sink = b.sink_from(c).unwrap();
    let running = b.build().unwrap().start();

    // Find two payloads in different classes.
    let probe = Classifier::new(64);
    let (a, b_val) = {
        let mut a = 0i64;
        let mut bv = 1i64;
        while probe.class_of(&Value::Int(a)) == probe.class_of(&Value::Int(bv)) {
            bv += 1;
        }
        while probe.class_of(&Value::Int(a)) == probe.class_of(&Value::Int(bv)) {
            a += 1;
        }
        (a, bv)
    };

    let spec_id = running.source(spec_src).push_speculative(Value::Int(a));
    std::thread::sleep(Duration::from_millis(30));
    running.source(final_src).push(Value::Int(b_val));

    // E2 finalizes although E1 is still speculative.
    assert!(
        running.sink(sink).wait_final(1, Duration::from_secs(10)),
        "independent final event must not be blocked by open speculation"
    );
    assert_eq!(running.sink(sink).final_count(), 1);
    // Now confirm E1.
    running.source(spec_src).finalize(spec_id, 0);
    assert!(running.sink(sink).wait_final(2, Duration::from_secs(10)));
    running.shutdown();
}

#[test]
fn speculative_operator_crash_recovers_precisely() {
    // Speculation + crash: the recovered operator replays its stable log
    // and reproduces identical final outputs.
    let mut b = GraphBuilder::new();
    let op = b.add_operator(
        StampedRelay::new(),
        OperatorConfig::speculative(LoggingConfig::simulated(Duration::from_micros(300))),
    );
    let src = b.source_into(op).unwrap();
    let sink = b.sink_from(op).unwrap();
    let running = b.build().unwrap().start();
    let opid = OperatorId::new(0);

    for i in 0..12 {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(12, Duration::from_secs(10)));
    let before = running.sink(sink).final_events_by_id();
    running.crash(opid);
    running.recover(opid);
    for i in 12..20 {
        running.source(src).push(Value::Int(i));
    }
    assert!(
        running.sink(sink).wait_final(20, Duration::from_secs(20)),
        "only {} of 20 after speculative recovery",
        running.sink(sink).final_count()
    );
    let after = running.sink(sink).final_events_by_id();
    for pre in &before {
        let post = after.iter().find(|e| e.id == pre.id).expect("event vanished");
        assert_eq!(post.payload, pre.payload, "speculative op diverged after recovery");
    }
    running.shutdown();
}

#[test]
fn final_latency_respects_log_stability_across_a_chain() {
    // Regression: a multi-input speculative operator's merge decision is a
    // logged determinant; its outputs must not finalize before the log
    // write completes (they once did, because the speculative path forgot
    // to record the input-order choice).
    use streammine::operators::{SketchOp, Union};
    let mut b = GraphBuilder::new();
    let union = b.add_operator(
        Union::new(),
        OperatorConfig::speculative(LoggingConfig::simulated(Duration::from_millis(10))),
    );
    let sketch = b.add_operator(
        SketchOp::new(64, 3, 5, Duration::ZERO),
        OperatorConfig::speculative(LoggingConfig::simulated(Duration::from_millis(10))),
    );
    b.connect(union, sketch).unwrap();
    let src = b.source_into(union).unwrap();
    let _src2 = b.source_into(union).unwrap();
    let sink = b.sink_from(sketch).unwrap();
    let running = b.build().unwrap().start();
    for i in 0..5 {
        running.source(src).push(Value::Int(i));
        std::thread::sleep(Duration::from_millis(15));
    }
    assert!(running.sink(sink).wait_final(5, Duration::from_secs(15)));
    let lat = running.sink(sink).final_latencies_us();
    let min = lat.iter().cloned().fold(f64::MAX, f64::min);
    assert!(min >= 10_000.0, "an output finalized before its log was stable: {min}us");
    // Speculative arrivals, by contrast, beat the log write.
    let spec = running.sink(sink).first_arrival_latencies_us();
    let spec_min = spec.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spec_min < 10_000.0, "speculative arrival should precede log stability: {spec_min}us");
    running.shutdown();
}

#[test]
fn speculative_union_merge_order_survives_crash() {
    // Spec-mode variant of the union-order recovery test: the interleaving
    // of two sources into a speculative classifier must replay identically.
    let mut b = GraphBuilder::new();
    let c = b.add_operator(
        Classifier::new(3),
        OperatorConfig::speculative(LoggingConfig::simulated(Duration::from_micros(300)))
            .with_checkpoint_every(8),
    );
    let s1 = b.source_into(c).unwrap();
    let s2 = b.source_into(c).unwrap();
    let sink = b.sink_from(c).unwrap();
    let running = b.build().unwrap().start();
    let op = streammine::common::ids::OperatorId::new(0);

    for i in 0..10 {
        running.source(s1).push(Value::Int(i * 2));
        running.source(s2).push(Value::Int(i * 2 + 1));
    }
    assert!(running.sink(sink).wait_final(20, Duration::from_secs(15)));
    let before = running.sink(sink).final_events_by_id();

    running.crash(op);
    running.recover(op);
    for i in 10..14 {
        running.source(s1).push(Value::Int(i * 2));
    }
    assert!(
        running.sink(sink).wait_final(24, Duration::from_secs(20)),
        "only {} of 24 after speculative-union recovery",
        running.sink(sink).final_count()
    );
    let after = running.sink(sink).final_events_by_id();
    for pre in &before {
        let post = after.iter().find(|e| e.id == pre.id).expect("event vanished");
        assert_eq!(post.payload, pre.payload, "merge order diverged for {}", pre.id);
    }
    running.shutdown();
}

//! Property-based precise recovery: for randomized workloads and crash
//! points, the outputs after crash + recovery equal the failure-free ones.

use std::time::Duration;

use proptest::prelude::*;
use streammine::common::event::{Event, Value};
use streammine::common::ids::OperatorId;
use streammine::core::{GraphBuilder, LoggingConfig, OpCtx, Operator, OperatorConfig};
use streammine::stm::StmAbort;

/// Stateful + non-deterministic: running sum plus a logged random draw.
#[derive(Default)]
struct SumTagger {
    sum: parking_lot::Mutex<Option<streammine::core::StateHandle<i64>>>,
}

impl Operator for SumTagger {
    fn name(&self) -> &str {
        "sum-tagger"
    }
    fn setup(&self, ctx: &mut streammine::core::SetupCtx<'_>) {
        *self.sum.lock() = Some(ctx.state(0i64));
    }
    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        let handle = self.sum.lock().expect("setup ran");
        let v = event.payload.as_i64().unwrap_or(0);
        ctx.update(handle, |s| s + v)?;
        let sum = *ctx.get(handle)?;
        let tag = ctx.random_u64();
        ctx.emit(Value::record(vec![Value::Int(sum), Value::Int(tag as i64)]));
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn precise_recovery_for_random_crash_points(
        values in proptest::collection::vec(-50i64..50, 8..30),
        crash_frac in 0.2f64..0.9,
        checkpoint in prop_oneof![Just(None), Just(Some(4u64)), Just(Some(7u64))],
    ) {
        let mut b = GraphBuilder::new();
        let mut cfg = OperatorConfig::logged(LoggingConfig::simulated(Duration::from_micros(200)));
        if let Some(every) = checkpoint {
            cfg = cfg.with_checkpoint_every(every);
        }
        let op = b.add_operator(SumTagger::default(), cfg);
        let src = b.source_into(op).unwrap();
        let sink = b.sink_from(op).unwrap();
        let running = b.build().unwrap().start();
        let opid = OperatorId::new(0);

        let crash_at = ((values.len() as f64) * crash_frac) as usize;
        for v in &values[..crash_at] {
            running.source(src).push(Value::Int(*v));
        }
        prop_assert!(running.sink(sink).wait_final(crash_at, Duration::from_secs(15)));
        let before = running.sink(sink).final_events_by_id();

        running.crash(opid);
        running.recover(opid);
        for v in &values[crash_at..] {
            running.source(src).push(Value::Int(*v));
        }
        prop_assert!(
            running.sink(sink).wait_final(values.len(), Duration::from_secs(30)),
            "stalled at {}/{}", running.sink(sink).final_count(), values.len()
        );
        let after = running.sink(sink).final_events_by_id();

        // Precise: all pre-crash outputs unchanged (both the deterministic
        // running sum and the logged random tag).
        for pre in &before {
            let post = after.iter().find(|e| e.id == pre.id).expect("event vanished");
            prop_assert_eq!(&post.payload, &pre.payload);
        }
        // Continuity: the running sums across the crash form one sequence.
        let sums: Vec<i64> = after
            .iter()
            .filter_map(|e| e.payload.field(0).and_then(Value::as_i64))
            .collect();
        let mut expect = 0i64;
        for (i, v) in values.iter().enumerate() {
            expect += v;
            prop_assert_eq!(sums[i], expect, "running sum diverged at {}", i);
        }
        running.shutdown();
    }

    /// Mid-batch crash: the operator dies while a pushed batch is still in
    /// flight — some of the batch's events processed, the rest queued or
    /// lost with the process. Recovery must replay the interrupted batch
    /// (a batch frame shares one link sequence across its events) and keep
    /// both the pre-crash outputs and the running-sum continuity intact.
    #[test]
    fn precise_recovery_for_mid_batch_crashes(
        warmup in proptest::collection::vec(-50i64..50, 4..12),
        batch in proptest::collection::vec(-50i64..50, 6..20),
        tail in proptest::collection::vec(-50i64..50, 2..10),
        checkpoint in prop_oneof![Just(None), Just(Some(3u64)), Just(Some(5u64))],
    ) {
        let mut b = GraphBuilder::new();
        let mut cfg = OperatorConfig::logged(LoggingConfig::simulated(Duration::from_micros(200)));
        if let Some(every) = checkpoint {
            cfg = cfg.with_checkpoint_every(every);
        }
        let op = b.add_operator(SumTagger::default(), cfg);
        let src = b.source_into(op).unwrap();
        let sink = b.sink_from(op).unwrap();
        let running = b.build().unwrap().start();
        let opid = OperatorId::new(0);

        for v in &warmup {
            running.source(src).push(Value::Int(*v));
        }
        prop_assert!(running.sink(sink).wait_final(warmup.len(), Duration::from_secs(15)));
        let before = running.sink(sink).final_events_by_id();

        // Push the batch and crash immediately: the coordinator is caught
        // mid-frame, with unprocessed batch events dying in its queues.
        running.source(src).push_batch(batch.iter().map(|v| Value::Int(*v)).collect());
        running.crash(opid);
        running.recover(opid);
        for v in &tail {
            running.source(src).push(Value::Int(*v));
        }
        let total = warmup.len() + batch.len() + tail.len();
        prop_assert!(
            running.sink(sink).wait_final(total, Duration::from_secs(30)),
            "stalled at {}/{}", running.sink(sink).final_count(), total
        );
        let after = running.sink(sink).final_events_by_id();

        for pre in &before {
            let post = after.iter().find(|e| e.id == pre.id).expect("event vanished");
            prop_assert_eq!(&post.payload, &pre.payload);
        }
        let sums: Vec<i64> = after
            .iter()
            .filter_map(|e| e.payload.field(0).and_then(Value::as_i64))
            .collect();
        prop_assert_eq!(sums.len(), total, "duplicate or missing outputs");
        let mut expect = 0i64;
        for (i, v) in warmup.iter().chain(&batch).chain(&tail).enumerate() {
            expect += v;
            prop_assert_eq!(sums[i], expect, "running sum diverged at {}", i);
        }
        running.shutdown();
    }
}

//! Property-based recovery: for randomized workloads and crash points,
//! precise recovery reproduces the failure-free outputs exactly, and
//! approximate (stale-snapshot) recovery keeps count-min estimates
//! within the declared `ε·N` allowance — escalating to a precise
//! checkpoint+replay cycle when the error budget refuses the loss.

use std::time::Duration;

use proptest::prelude::*;
use streammine::chaos::verify_bounded_divergence;
use streammine::common::event::{Event, Value};
use streammine::common::ids::OperatorId;
use streammine::core::{GraphBuilder, LoggingConfig, OpCtx, Operator, OperatorConfig};
use streammine::obs::Labels;
use streammine::operators::CountMinOp;
use streammine::sketch::ErrorBound;
use streammine::stm::StmAbort;

/// Stateful + non-deterministic: running sum plus a logged random draw.
#[derive(Default)]
struct SumTagger {
    sum: parking_lot::Mutex<Option<streammine::core::StateHandle<i64>>>,
}

impl Operator for SumTagger {
    fn name(&self) -> &str {
        "sum-tagger"
    }
    fn setup(&self, ctx: &mut streammine::core::SetupCtx<'_>) {
        *self.sum.lock() = Some(ctx.state(0i64));
    }
    fn process(&self, ctx: &mut OpCtx<'_, '_>, event: &Event) -> Result<(), StmAbort> {
        let handle = self.sum.lock().expect("setup ran");
        let v = event.payload.as_i64().unwrap_or(0);
        ctx.update(handle, |s| s + v)?;
        let sum = *ctx.get(handle)?;
        let tag = ctx.random_u64();
        ctx.emit(Value::record(vec![Value::Int(sum), Value::Int(tag as i64)]));
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn precise_recovery_for_random_crash_points(
        values in proptest::collection::vec(-50i64..50, 8..30),
        crash_frac in 0.2f64..0.9,
        checkpoint in prop_oneof![Just(None), Just(Some(4u64)), Just(Some(7u64))],
    ) {
        let mut b = GraphBuilder::new();
        let mut cfg = OperatorConfig::logged(LoggingConfig::simulated(Duration::from_micros(200)));
        if let Some(every) = checkpoint {
            cfg = cfg.with_checkpoint_every(every);
        }
        let op = b.add_operator(SumTagger::default(), cfg);
        let src = b.source_into(op).unwrap();
        let sink = b.sink_from(op).unwrap();
        let running = b.build().unwrap().start();
        let opid = OperatorId::new(0);

        let crash_at = ((values.len() as f64) * crash_frac) as usize;
        for v in &values[..crash_at] {
            running.source(src).push(Value::Int(*v));
        }
        prop_assert!(running.sink(sink).wait_final(crash_at, Duration::from_secs(15)));
        let before = running.sink(sink).final_events_by_id();

        running.crash(opid);
        running.recover(opid);
        for v in &values[crash_at..] {
            running.source(src).push(Value::Int(*v));
        }
        prop_assert!(
            running.sink(sink).wait_final(values.len(), Duration::from_secs(30)),
            "stalled at {}/{}", running.sink(sink).final_count(), values.len()
        );
        let after = running.sink(sink).final_events_by_id();

        // Precise: all pre-crash outputs unchanged (both the deterministic
        // running sum and the logged random tag).
        for pre in &before {
            let post = after.iter().find(|e| e.id == pre.id).expect("event vanished");
            prop_assert_eq!(&post.payload, &pre.payload);
        }
        // Continuity: the running sums across the crash form one sequence.
        let sums: Vec<i64> = after
            .iter()
            .filter_map(|e| e.payload.field(0).and_then(Value::as_i64))
            .collect();
        let mut expect = 0i64;
        for (i, v) in values.iter().enumerate() {
            expect += v;
            prop_assert_eq!(sums[i], expect, "running sum diverged at {}", i);
        }
        running.shutdown();
    }

    /// Mid-batch crash: the operator dies while a pushed batch is still in
    /// flight — some of the batch's events processed, the rest queued or
    /// lost with the process. Recovery must replay the interrupted batch
    /// (a batch frame shares one link sequence across its events) and keep
    /// both the pre-crash outputs and the running-sum continuity intact.
    #[test]
    fn precise_recovery_for_mid_batch_crashes(
        warmup in proptest::collection::vec(-50i64..50, 4..12),
        batch in proptest::collection::vec(-50i64..50, 6..20),
        tail in proptest::collection::vec(-50i64..50, 2..10),
        checkpoint in prop_oneof![Just(None), Just(Some(3u64)), Just(Some(5u64))],
    ) {
        let mut b = GraphBuilder::new();
        let mut cfg = OperatorConfig::logged(LoggingConfig::simulated(Duration::from_micros(200)));
        if let Some(every) = checkpoint {
            cfg = cfg.with_checkpoint_every(every);
        }
        let op = b.add_operator(SumTagger::default(), cfg);
        let src = b.source_into(op).unwrap();
        let sink = b.sink_from(op).unwrap();
        let running = b.build().unwrap().start();
        let opid = OperatorId::new(0);

        for v in &warmup {
            running.source(src).push(Value::Int(*v));
        }
        prop_assert!(running.sink(sink).wait_final(warmup.len(), Duration::from_secs(15)));
        let before = running.sink(sink).final_events_by_id();

        // Push the batch and crash immediately: the coordinator is caught
        // mid-frame, with unprocessed batch events dying in its queues.
        running.source(src).push_batch(batch.iter().map(|v| Value::Int(*v)).collect());
        running.crash(opid);
        running.recover(opid);
        for v in &tail {
            running.source(src).push(Value::Int(*v));
        }
        let total = warmup.len() + batch.len() + tail.len();
        prop_assert!(
            running.sink(sink).wait_final(total, Duration::from_secs(30)),
            "stalled at {}/{}", running.sink(sink).final_count(), total
        );
        let after = running.sink(sink).final_events_by_id();

        for pre in &before {
            let post = after.iter().find(|e| e.id == pre.id).expect("event vanished");
            prop_assert_eq!(&post.payload, &pre.payload);
        }
        let sums: Vec<i64> = after
            .iter()
            .filter_map(|e| e.payload.field(0).and_then(Value::as_i64))
            .collect();
        prop_assert_eq!(sums.len(), total, "duplicate or missing outputs");
        let mut expect = 0i64;
        for (i, v) in warmup.iter().chain(&batch).chain(&tail).enumerate() {
            expect += v;
            prop_assert_eq!(sums[i], expect, "running sum diverged at {}", i);
        }
        running.shutdown();
    }
}

/// One checkpointed count-min operator in approximate mode, crashed after
/// `crash_at` events (`None` = fault-free). Returns the estimates in
/// event-id order plus the `recovery.escalations` counter.
fn countmin_run(
    keys: &[i64],
    crash_at: Option<usize>,
    every: u64,
    bound: ErrorBound,
) -> (Vec<u64>, u64) {
    let mut b = GraphBuilder::new();
    let cfg = OperatorConfig::logged(LoggingConfig::simulated(Duration::from_micros(200)))
        .with_checkpoint_every(every)
        .with_approximate_recovery(bound);
    // Fixed hash seed: the faulty run and its baseline must agree on
    // counter placement for estimates to be comparable.
    let op = b.add_operator(CountMinOp::new(32, 4, 7, Duration::ZERO).stamped(), cfg);
    let src = b.source_into(op).unwrap();
    let sink = b.sink_from(op).unwrap();
    let running = b.build().unwrap().start();

    let crash = crash_at.unwrap_or(keys.len());
    for k in &keys[..crash] {
        running.source(src).push(Value::Int(*k));
    }
    assert!(running.sink(sink).wait_final(crash, Duration::from_secs(15)));
    if crash_at.is_some() {
        let opid = OperatorId::new(0);
        running.crash(opid);
        running.recover(opid);
        for k in &keys[crash..] {
            running.source(src).push(Value::Int(*k));
        }
        assert!(
            running.sink(sink).wait_final(keys.len(), Duration::from_secs(30)),
            "stalled at {}/{}\n{}",
            running.sink(sink).final_count(),
            keys.len(),
            running.journal_dump()
        );
    }
    let finals = running.sink(sink).final_events_by_id();
    assert_eq!(finals.len(), keys.len(), "duplicate or missing outputs");
    let estimates = finals
        .iter()
        .map(|e| e.payload.field(1).and_then(Value::as_i64).expect("Record[key, est]") as u64)
        .collect();
    let escalations = running.metrics().counter("recovery.escalations", Labels::op(0)).unwrap_or(0);
    running.shutdown();
    (estimates, escalations)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Stale-snapshot resume: for an arbitrary checkpoint lag and crash
    /// point, recovered count-min estimates never exceed the fault-free
    /// run's and fall below it by at most `ε·N` — whether the budget
    /// admitted the loss or escalated to a precise cycle.
    #[test]
    fn approximate_recovery_stays_within_declared_bound(
        keys in proptest::collection::vec(0i64..12, 30..70),
        crash_frac in 0.3f64..0.9,
        every in 2u64..8,
    ) {
        let bound = ErrorBound::new(0.25, 0.05);
        let crash_at = ((keys.len() as f64) * crash_frac) as usize;
        let (baseline, _) = countmin_run(&keys, None, every, bound);
        let (recovered, _) = countmin_run(&keys, Some(crash_at), every, bound);
        let report = verify_bounded_divergence(bound, keys.len() as u64, &baseline, &recovered);
        prop_assert!(
            report.is_ok(),
            "crash at {} (checkpoint every {}): {}", crash_at, every, report.unwrap_err()
        );
    }
}

/// A bound too tight to absorb any loss (ε = 1 ppm allows zero lost
/// updates below a million deliveries) must refuse the stale-snapshot
/// resume and escalate: the `recovery.escalations` counter fires and the
/// precise cycle reproduces the fault-free estimates exactly.
#[test]
fn exhausted_budget_escalates_to_precise_recovery() {
    let keys: Vec<i64> = (0..20).map(|i| i % 5).collect();
    let bound = ErrorBound::new(0.000_001, 0.05);
    let (baseline, _) = countmin_run(&keys, None, 6, bound);
    let (recovered, escalations) = countmin_run(&keys, Some(10), 6, bound);
    assert!(escalations >= 1, "zero-allowance budget admitted a stale-snapshot resume");
    assert_eq!(recovered, baseline, "escalated (precise) recovery changed the estimates");
}

//! Property test: every wire `Message` — all `Control` variants, single
//! events, and `DataBatch` frames with trace contexts — survives
//! encode → truncate-at-every-byte → decode with a clean `DecodeError`,
//! never a panic, and the untruncated bytes round-trip exactly.
//!
//! The TCP transport only guards frame *integrity* (length prefix + CRC);
//! a torn frame that slips through at a lower layer, or a buggy peer, must
//! still be rejected by the codec itself rather than crash a worker.

use proptest::prelude::*;

use streammine::common::codec::{decode_from_slice, encode_to_vec};
use streammine::common::event::{Event, TraceCtx, Value};
use streammine::common::ids::{EventId, OperatorId};
use streammine::core::{Control, Message};

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks the equality half of the check
        // without exercising any extra codec path.
        (-1e15f64..1e15).prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        ".{0,12}".prop_map(Value::from),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::bytes),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Value::record)
    })
}

fn event_id_strategy() -> impl Strategy<Value = EventId> {
    (any::<u32>(), any::<u64>()).prop_map(|(op, seq)| EventId::new(OperatorId::new(op), seq))
}

fn trace_strategy() -> impl Strategy<Value = Option<TraceCtx>> {
    prop_oneof![
        Just(None),
        (any::<u64>(), any::<u64>()).prop_map(|(id, parent)| Some(TraceCtx { id, parent })),
    ]
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (
        event_id_strategy(),
        any::<u32>(),
        any::<u64>(),
        any::<bool>(),
        value_strategy(),
        trace_strategy(),
    )
        .prop_map(|(id, version, timestamp, speculative, payload, trace)| Event {
            id,
            version,
            timestamp,
            speculative,
            payload,
            trace,
        })
}

fn control_strategy() -> impl Strategy<Value = Control> {
    prop_oneof![
        (event_id_strategy(), any::<u32>())
            .prop_map(|(id, version)| Control::Finalize { id, version }),
        event_id_strategy().prop_map(|id| Control::Revoke { id }),
        any::<u64>().prop_map(|upto| Control::Ack { upto }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(from, token)| Control::ReplayRequest { from, token }),
        Just(Control::Eof),
    ]
}

fn message_strategy() -> impl Strategy<Value = Message> {
    prop_oneof![
        event_strategy().prop_map(Message::Data),
        control_strategy().prop_map(Message::Control),
        // Batches carry ≥ 2 events by protocol contract.
        proptest::collection::vec(event_strategy(), 2..5).prop_map(Message::DataBatch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn message_roundtrips_and_every_truncation_fails_cleanly(msg in message_strategy()) {
        let bytes = encode_to_vec(&msg);
        let back: Message = decode_from_slice(&bytes).expect("full frame must decode");
        prop_assert_eq!(&back, &msg, "roundtrip changed the message");
        // A strict prefix can never be a complete, exactly-consumed
        // encoding: decode must return an error (UnexpectedEof /
        // InvalidTag / InvalidUtf8 / TrailingBytes), not panic and not
        // silently succeed.
        for cut in 0..bytes.len() {
            let res: Result<Message, _> = decode_from_slice(&bytes[..cut]);
            prop_assert!(
                res.is_err(),
                "truncation at byte {}/{} decoded to {:?}",
                cut,
                bytes.len(),
                res
            );
        }
    }

    #[test]
    fn corrupted_bytes_never_panic(msg in message_strategy(), flip in any::<u8>(), pos_frac in 0.0f64..1.0) {
        let mut bytes = encode_to_vec(&msg);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip | 1; // always flip at least one bit
        // Either a clean decode error or a (different) valid message —
        // both acceptable; a panic or abort is the only failure mode.
        let _ = decode_from_slice::<Message>(&bytes);
    }
}

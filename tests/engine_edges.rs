//! Engine edge cases: multi-threaded speculative nodes, parked speculative
//! inputs at non-speculative operators, EOF propagation, link-delay graphs,
//! and checkpoint-driven log truncation.

use std::time::{Duration, Instant};

use streammine::common::event::{Event, Value};
use streammine::common::ids::OperatorId;
use streammine::core::{GraphBuilder, LoggingConfig, OpCtx, Operator, OperatorConfig};
use streammine::net::LinkConfig;
use streammine::operators::{Classifier, CountWindow, StampedRelay, WindowAgg};
use streammine::stm::StmAbort;

#[test]
fn multithreaded_speculative_node_preserves_order_sensitive_state() {
    // CountWindow sums depend on processing order; timestamp-ordered
    // commits must keep them correct even with 4 worker threads.
    let mut b = GraphBuilder::new();
    let w = b.add_operator(
        CountWindow::new(4, WindowAgg::Sum),
        OperatorConfig::speculative_unlogged().with_threads(4),
    );
    let src = b.source_into(w).unwrap();
    let sink = b.sink_from(w).unwrap();
    let running = b.build().unwrap().start();
    for i in 1..=32i64 {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(8, Duration::from_secs(15)));
    let sums: Vec<f64> =
        running.sink(sink).final_events_by_id().iter().filter_map(|e| e.payload.as_f64()).collect();
    let expected: Vec<f64> = (0..8).map(|w| (1..=4).map(|k| (w * 4 + k) as f64).sum()).collect();
    assert_eq!(
        sums,
        expected,
        "windows must aggregate in arrival order (final_count={}, revoked={:?}, records={:?})",
        running.sink(sink).final_count(),
        running.sink(sink).revoked(),
        running
            .sink(sink)
            .records()
            .iter()
            .map(|r| (r.event.id, r.event.version, r.final_at_us.is_some()))
            .collect::<Vec<_>>()
    );
    running.shutdown();
}

#[test]
fn nonspec_operator_parks_speculative_inputs_until_finalized() {
    let mut b = GraphBuilder::new();
    let c = b.add_operator(Classifier::new(4), OperatorConfig::plain());
    let src = b.source_into(c).unwrap();
    let sink = b.sink_from(c).unwrap();
    let running = b.build().unwrap().start();

    let spec_id = running.source(src).push_speculative(Value::Int(7));
    running.source(src).push(Value::Int(8)); // final, processed immediately
    assert!(running.sink(sink).wait_final(1, Duration::from_secs(5)));
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(running.sink(sink).final_count(), 1, "speculative input must be parked");

    running.source(src).finalize(spec_id, 0);
    assert!(running.sink(sink).wait_final(2, Duration::from_secs(5)));
    running.shutdown();
}

#[test]
fn nonspec_operator_drops_parked_input_on_revoke() {
    let mut b = GraphBuilder::new();
    let c = b.add_operator(Classifier::new(4), OperatorConfig::plain());
    let src = b.source_into(c).unwrap();
    let sink = b.sink_from(c).unwrap();
    let running = b.build().unwrap().start();

    let spec_id = running.source(src).push_speculative(Value::Int(7));
    std::thread::sleep(Duration::from_millis(30));
    running.source(src).revoke(spec_id);
    running.source(src).push(Value::Int(8));
    assert!(running.sink(sink).wait_final(1, Duration::from_secs(5)));
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(running.sink(sink).final_count(), 1, "revoked input must never process");
    running.shutdown();
}

#[test]
fn eof_propagates_through_a_chain() {
    struct Fwd;
    impl Operator for Fwd {
        fn process(&self, ctx: &mut OpCtx<'_, '_>, ev: &Event) -> Result<(), StmAbort> {
            ctx.emit(ev.payload.clone());
            Ok(())
        }
    }
    let mut b = GraphBuilder::new();
    let a = b.add_operator(Fwd, OperatorConfig::plain());
    let c = b.add_operator(Fwd, OperatorConfig::plain());
    b.connect(a, c).unwrap();
    let src = b.source_into(a).unwrap();
    let sink = b.sink_from(c).unwrap();
    let running = b.build().unwrap().start();
    running.source(src).push(Value::Int(1));
    running.source(src).eof();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !running.sink(sink).saw_eof() {
        assert!(Instant::now() < deadline, "eof never reached the sink");
        std::thread::yield_now();
    }
    assert_eq!(running.sink(sink).final_count(), 1);
    running.shutdown();
}

#[test]
fn lan_links_add_constant_latency_but_keep_speculation_benefit() {
    // The paper's Figure 3 discussion: network hops add a roughly constant
    // term; speculation's advantage (parallel logs) is preserved.
    let measure = |speculative: bool| -> f64 {
        let mut b = GraphBuilder::new().with_links(LinkConfig::lan());
        let log = || LoggingConfig::simulated(Duration::from_millis(8));
        let cfg = |spec: bool| {
            if spec {
                OperatorConfig::speculative(log())
            } else {
                OperatorConfig::logged(log())
            }
        };
        let r1 = b.add_operator(StampedRelay::new(), cfg(speculative));
        let r2 = b.add_operator(StampedRelay::new(), cfg(speculative));
        let r3 = b.add_operator(StampedRelay::new(), cfg(speculative));
        b.connect(r1, r2).unwrap();
        b.connect(r2, r3).unwrap();
        let src = b.source_into(r1).unwrap();
        let sink = b.sink_from(r3).unwrap();
        let running = b.build().unwrap().start();
        for i in 0..6 {
            running.source(src).push(Value::Int(i));
            std::thread::sleep(Duration::from_millis(30));
        }
        assert!(running.sink(sink).wait_final(6, Duration::from_secs(20)));
        let lat = running.sink(sink).final_latencies_us();
        running.shutdown();
        lat.iter().sum::<f64>() / lat.len() as f64
    };
    let nonspec = measure(false);
    let spec = measure(true);
    assert!(
        spec < nonspec * 0.75,
        "speculation benefit must survive LAN delays: spec={spec:.0}us nonspec={nonspec:.0}us"
    );
}

#[test]
fn checkpointing_truncates_the_decision_log() {
    let mut b = GraphBuilder::new();
    let op = b.add_operator(
        StampedRelay::new(),
        OperatorConfig::logged(LoggingConfig::simulated(Duration::from_micros(200)))
            .with_checkpoint_every(5),
    );
    let src = b.source_into(op).unwrap();
    let sink = b.sink_from(op).unwrap();
    let running = b.build().unwrap().start();
    for i in 0..20 {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(20, Duration::from_secs(10)));
    std::thread::sleep(Duration::from_millis(100));
    let log = running.operator_log(OperatorId::new(0)).expect("operator logs");
    assert_eq!(log.appended(), 20, "one decision record per event");
    assert!(
        log.stable_records().len() <= 6,
        "checkpoints must prune the log, {} records remain",
        log.stable_records().len()
    );
    running.shutdown();
}

#[test]
fn double_crash_recovery_still_precise() {
    // Crash the same operator twice; outputs must stay identical.
    let mut b = GraphBuilder::new();
    let op = b.add_operator(
        StampedRelay::new(),
        OperatorConfig::logged(LoggingConfig::simulated(Duration::from_micros(200)))
            .with_checkpoint_every(6),
    );
    let src = b.source_into(op).unwrap();
    let sink = b.sink_from(op).unwrap();
    let running = b.build().unwrap().start();
    let opid = OperatorId::new(0);

    for i in 0..10 {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(10, Duration::from_secs(10)));
    let snapshot1 = running.sink(sink).final_events_by_id();

    running.crash(opid);
    running.recover(opid);
    for i in 10..16 {
        running.source(src).push(Value::Int(i));
    }
    assert!(running.sink(sink).wait_final(16, Duration::from_secs(20)));
    let snapshot2 = running.sink(sink).final_events_by_id();

    running.crash(opid);
    running.recover(opid);
    for i in 16..22 {
        running.source(src).push(Value::Int(i));
    }
    assert!(
        running.sink(sink).wait_final(22, Duration::from_secs(20)),
        "stalled at {} after second recovery",
        running.sink(sink).final_count()
    );
    let final_snapshot = running.sink(sink).final_events_by_id();
    for pre in snapshot1.iter().chain(snapshot2.iter()) {
        let post = final_snapshot.iter().find(|e| e.id == pre.id).expect("event vanished");
        assert_eq!(post.payload, pre.payload, "{} diverged across double recovery", pre.id);
    }
    running.shutdown();
}

//! The divergence-bounded chaos grid, in-process edition: 16 seeded
//! workloads, each crashed twice mid-stream, recovered in *approximate*
//! mode (stale-snapshot resume, no determinant-log wait, lost updates
//! charged to the error budget).
//!
//! The sink's count-min estimates may fall below the fault-free run's —
//! that is the loss the budget accounts for — but may never exceed them,
//! and the worst deficit must stay within the declared `ε·N` allowance
//! on every seed. The same grid in precise mode must stay byte-identical.

use std::time::Duration;

use streammine::chaos::verify_bounded_divergence;
use streammine::common::event::Value;
use streammine::common::ids::OperatorId;
use streammine::core::{GraphBuilder, LoggingConfig, OperatorConfig};
use streammine::obs::Labels;
use streammine::operators::CountMinOp;
use streammine::sketch::ErrorBound;

const LOG_LATENCY: Duration = Duration::from_micros(200);
const EVENTS: usize = 120;
const CHECKPOINT_EVERY: u64 = 4;
const EPSILON: f64 = 0.2;
const DELTA: f64 = 0.05;

/// Seeded workload: 120 events over 16 keys, distinct stream per seed.
fn keys(seed: u64, n: usize) -> Vec<i64> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03);
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) % 16) as i64
        })
        .collect()
}

struct RunOutcome {
    /// Count-min estimates in event-id order (one per input event).
    estimates: Vec<u64>,
    /// `recovery.error_budget.lost` gauge after the run.
    lost: u64,
    /// `recovery.error_budget.remaining` gauge after the run.
    remaining: u64,
    /// `recovery.escalations` counter after the run.
    escalations: u64,
}

/// Runs `input` through one checkpointed count-min operator, crashing it
/// after each prefix length in `crashes` (which must be ascending).
fn countmin_run(input: &[i64], crashes: &[usize], approximate: bool) -> RunOutcome {
    let mut b = GraphBuilder::new();
    let mut cfg = OperatorConfig::logged(LoggingConfig::simulated(LOG_LATENCY))
        .with_checkpoint_every(CHECKPOINT_EVERY);
    if approximate {
        cfg = cfg.with_approximate_recovery(ErrorBound::new(EPSILON, DELTA));
    }
    // Fixed hash seed: every run (and the fault-free baseline) must place
    // keys in the same counters. Stamped, so precise mode pays the
    // determinant-log wait that approximate mode trades away.
    let op = b.add_operator(CountMinOp::new(64, 4, 11, Duration::ZERO).stamped(), cfg);
    let src = b.source_into(op).unwrap();
    let sink = b.sink_from(op).unwrap();
    let running = b.build().unwrap().start();
    let opid = OperatorId::new(0);

    let mut pushed = 0;
    for &crash_at in crashes {
        for k in &input[pushed..crash_at] {
            running.source(src).push(Value::Int(*k));
        }
        pushed = crash_at;
        assert!(
            running.sink(sink).wait_final(pushed, Duration::from_secs(30)),
            "stalled at {}/{pushed} before crash\n{}",
            running.sink(sink).final_count(),
            running.journal_dump()
        );
        running.crash(opid);
        running.recover(opid);
    }
    for k in &input[pushed..] {
        running.source(src).push(Value::Int(*k));
    }
    assert!(
        running.sink(sink).wait_final(input.len(), Duration::from_secs(60)),
        "stalled at {}/{} after recovery\n{}",
        running.sink(sink).final_count(),
        input.len(),
        running.journal_dump()
    );

    let finals = running.sink(sink).final_events_by_id();
    assert_eq!(finals.len(), input.len(), "duplicate or missing outputs");
    let estimates = finals
        .iter()
        .map(|e| e.payload.field(1).and_then(Value::as_i64).expect("Record[key, est]") as u64)
        .collect();
    let snap = running.metrics();
    let outcome = RunOutcome {
        estimates,
        lost: snap.gauge("recovery.error_budget.lost", Labels::op(0)).unwrap_or(0) as u64,
        remaining: snap.gauge("recovery.error_budget.remaining", Labels::op(0)).unwrap_or(0) as u64,
        escalations: snap.counter("recovery.escalations", Labels::op(0)).unwrap_or(0),
    };
    running.shutdown();
    outcome
}

/// Per-seed fault schedule: two crashes, both past a warmup prefix so the
/// budget has deliveries to spend against, at seed-dependent offsets.
fn schedule(seed: u64) -> [usize; 2] {
    let first = 50 + (seed as usize % 13) * 3;
    [first, first + 17 + (seed as usize % 7)]
}

#[test]
fn chaos_grid_16_seeds_stays_within_declared_bound() {
    let bound = ErrorBound::new(EPSILON, DELTA);
    let mut grid_lost = 0u64;
    for seed in 0..16u64 {
        let input = keys(seed, EVENTS);
        let crashes = schedule(seed);
        let baseline = countmin_run(&input, &[], true);
        let faulty = countmin_run(&input, &crashes, true);
        let report = verify_bounded_divergence(
            bound,
            input.len() as u64,
            &baseline.estimates,
            &faulty.estimates,
        )
        .unwrap_or_else(|e| panic!("seed {seed} (crashes {crashes:?}): {e}"));
        eprintln!(
            "seed {seed:2}: crashes {crashes:?}  deviation {}/{} allowed  \
             budget lost {} remaining {}  escalations {}",
            report.max_deviation, report.allowed, faulty.lost, faulty.remaining, faulty.escalations
        );
        grid_lost += faulty.lost;
    }
    // The grid must actually exercise the stale-snapshot resume: if every
    // seed escalated (or lost nothing), the bound held vacuously.
    assert!(grid_lost > 0, "no seed charged its error budget — the approximate path never ran");
}

#[test]
fn same_grid_in_precise_mode_is_byte_identical() {
    for seed in 0..16u64 {
        let input = keys(seed, EVENTS);
        let crashes = schedule(seed);
        let baseline = countmin_run(&input, &[], false);
        let faulty = countmin_run(&input, &crashes, false);
        assert_eq!(
            faulty.estimates, baseline.estimates,
            "seed {seed}: precise recovery diverged (crashes {crashes:?})"
        );
        assert_eq!(faulty.lost, 0, "seed {seed}: precise mode charged an error budget");
    }
}
